package schedule

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"calliope/internal/units"
)

func TestDutyCycleSizingPaperNumbers(t *testing.T) {
	// 256 KB block at 1.5 Mbit/s plays for ~1.4 s. With a worst-case
	// disk transfer of ~60 ms (seek + rotation + 256 KB at ~5 MB/s),
	// a disk sustains ~23 streams — the paper's measured MSU limit of
	// 22 (for two disks sharing a bus) is the same order.
	d, err := NewDutyCycle(256*units.KB, 1500*units.Kbps, 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Slots() < 20 || d.Slots() > 25 {
		t.Errorf("Slots = %d, want ~23", d.Slots())
	}
	if d.CycleLength() != time.Duration(d.Slots())*60*time.Millisecond {
		t.Errorf("CycleLength = %v", d.CycleLength())
	}
	if d.MaxStartDelay() != time.Duration(d.Slots()-1)*60*time.Millisecond {
		t.Errorf("MaxStartDelay = %v", d.MaxStartDelay())
	}
}

func TestDutyCycleAdmission(t *testing.T) {
	d, err := NewDutyCycle(64*units.KB, 8*units.Mbps, 16*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	n := d.Slots()
	slots := make([]int, n)
	for i := 0; i < n; i++ {
		s, err := d.Allocate()
		if err != nil {
			t.Fatalf("Allocate %d/%d: %v", i, n, err)
		}
		slots[i] = s
	}
	if d.InUse() != n {
		t.Fatalf("InUse = %d, want %d", d.InUse(), n)
	}
	if _, err := d.Allocate(); !errors.Is(err, ErrFull) {
		t.Fatalf("over-admission: %v", err)
	}
	if err := d.Release(slots[2]); err != nil {
		t.Fatal(err)
	}
	s, err := d.Allocate()
	if err != nil || s != slots[2] {
		t.Fatalf("released slot not reused: %d, %v", s, err)
	}
}

func TestDutyCycleReleaseValidation(t *testing.T) {
	d, _ := NewDutyCycle(64*units.KB, 8*units.Mbps, 16*time.Millisecond)
	if err := d.Release(-1); !errors.Is(err, ErrBadSlot) {
		t.Errorf("negative slot: %v", err)
	}
	if err := d.Release(d.Slots()); !errors.Is(err, ErrBadSlot) {
		t.Errorf("out-of-range slot: %v", err)
	}
	if err := d.Release(0); !errors.Is(err, ErrBadSlot) {
		t.Errorf("double free: %v", err)
	}
}

func TestDutyCycleTooSlowDisk(t *testing.T) {
	// A slot longer than the block play time means the disk cannot
	// feed even a single stream.
	if _, err := NewDutyCycle(64*units.KB, 100*units.Mbps, time.Second); err == nil {
		t.Fatal("impossible duty cycle accepted")
	}
}

func TestDutyCycleBadParams(t *testing.T) {
	if _, err := NewDutyCycle(0, units.Mbps, time.Millisecond); err == nil {
		t.Error("zero block accepted")
	}
	if _, err := NewDutyCycle(units.KB, 0, time.Millisecond); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewDutyCycle(units.KB, units.Mbps, 0); err == nil {
		t.Error("zero slot time accepted")
	}
}

func TestSlotStart(t *testing.T) {
	d, _ := NewDutyCycle(256*units.KB, 1500*units.Kbps, 50*time.Millisecond)
	got, err := d.SlotStart(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*d.CycleLength() + 150*time.Millisecond
	if got != want {
		t.Fatalf("SlotStart = %v, want %v", got, want)
	}
	if _, err := d.SlotStart(d.Slots(), 0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("bad slot: %v", err)
	}
}

func TestStripedDutyCycle(t *testing.T) {
	single, err := NewDutyCycle(256*units.KB, 1500*units.Kbps, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	striped, err := NewStripedDutyCycle(256*units.KB, 1500*units.Kbps, 50*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	// §2.3.3: N disks → N×D slots, and the VCR-command delay grows N×.
	if striped.Slots() != 4*single.Slots() {
		t.Errorf("striped slots = %d, want %d", striped.Slots(), 4*single.Slots())
	}
	ratio := float64(striped.MaxStartDelay()) / float64(single.MaxStartDelay())
	if ratio < 3.9 || ratio > 4.2 {
		t.Errorf("striped delay ratio = %.2f, want ~4", ratio)
	}
	if _, err := NewStripedDutyCycle(256*units.KB, 1500*units.Kbps, 50*time.Millisecond, 0); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestLedgerReserveRelease(t *testing.T) {
	l, err := NewLedger(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(1, 400); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(2, 400); err != nil {
		t.Fatal(err)
	}
	if l.Available() != 200 || l.Reserved() != 800 {
		t.Fatalf("Available=%d Reserved=%d", l.Available(), l.Reserved())
	}
	if err := l.Reserve(3, 300); !errors.Is(err, ErrOverdrawn) {
		t.Fatalf("overdraw: %v", err)
	}
	if err := l.Reserve(1, 10); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := l.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(3, 300); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	if err := l.Release(99); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("release unknown: %v", err)
	}
}

func TestLedgerAdjustReclaimsOverestimate(t *testing.T) {
	// The record path: reserve from the client's estimate, shrink to
	// actual use at commit.
	l, _ := NewLedger(1000)
	if err := l.Reserve(7, 900); err != nil {
		t.Fatal(err)
	}
	if err := l.Adjust(7, 150); err != nil {
		t.Fatal(err)
	}
	if l.Available() != 850 {
		t.Fatalf("Available = %d, want 850", l.Available())
	}
	if err := l.Adjust(7, 2000); !errors.Is(err, ErrOverdrawn) {
		t.Fatalf("grow past capacity: %v", err)
	}
	if err := l.Adjust(8, 1); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("adjust unknown: %v", err)
	}
	if err := l.Adjust(7, -1); err == nil {
		t.Fatal("negative adjust accepted")
	}
}

func TestLedgerValidation(t *testing.T) {
	if _, err := NewLedger(-1); err == nil {
		t.Error("negative capacity accepted")
	}
	l, _ := NewLedger(10)
	if err := l.Reserve(1, -5); err == nil {
		t.Error("negative reservation accepted")
	}
}

// Property: any sequence of reserve/adjust/release keeps
// 0 ≤ Reserved ≤ Capacity and Reserved == sum of live entries.
func TestLedgerInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		l, _ := NewLedger(10000)
		live := map[uint64]int64{}
		for i, op := range ops {
			key := uint64(op % 8)
			amount := int64(op % 3000)
			switch (op / 8) % 3 {
			case 0:
				if err := l.Reserve(key, amount); err == nil {
					live[key] = amount
				}
			case 1:
				if err := l.Adjust(key, amount); err == nil {
					live[key] = amount
				}
			case 2:
				if err := l.Release(key); err == nil {
					delete(live, key)
				}
			}
			var sum int64
			for _, v := range live {
				sum += v
			}
			if l.Reserved() != sum || l.Reserved() < 0 || l.Reserved() > l.Capacity() {
				t.Logf("op %d: reserved=%d sum=%d", i, l.Reserved(), sum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: slot allocation never double-books and Release always
// makes room again.
func TestDutyCycleSlotProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		d, err := NewDutyCycle(64*units.KB, 4*units.Mbps, 10*time.Millisecond)
		if err != nil {
			return false
		}
		held := map[int]bool{}
		for _, op := range ops {
			if op%2 == 0 {
				s, err := d.Allocate()
				if err != nil {
					if len(held) != d.Slots() {
						return false // ErrFull while slots remain
					}
					continue
				}
				if held[s] {
					return false // double-booked
				}
				held[s] = true
			} else if len(held) > 0 {
				for s := range held {
					if err := d.Release(s); err != nil {
						return false
					}
					delete(held, s)
					break
				}
			}
			if d.InUse() != len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
