package msu

import (
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"calliope/internal/core"
	"calliope/internal/faultinject"
	"calliope/internal/msufs"
	"calliope/internal/units"
	"calliope/internal/wire"
)

// fakeCoordinator accepts MSU registrations and records notifications,
// letting tests drive the MSU's RPC surface directly.
type fakeCoordinator struct {
	ln net.Listener

	mu       sync.Mutex
	msuPeer  *wire.Peer
	regs     int
	ended    []wire.StreamEnded
	recorded []wire.RecordingDone
	wg       sync.WaitGroup
}

func startFakeCoordinator(t *testing.T, addr string) *fakeCoordinator {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeCoordinator{ln: ln}
	fc.wg.Add(1)
	go fc.accept()
	t.Cleanup(func() { fc.Close() })
	return fc
}

func (fc *fakeCoordinator) accept() {
	defer fc.wg.Done()
	for {
		conn, err := fc.ln.Accept()
		if err != nil {
			return
		}
		var peer *wire.Peer
		peer = wire.NewPeerStopped(conn, func(msgType string, body json.RawMessage) (any, error) {
			switch msgType {
			case wire.TypeMSUHello:
				fc.mu.Lock()
				fc.msuPeer = peer
				fc.regs++
				fc.mu.Unlock()
				return &wire.MSUWelcome{}, nil
			case wire.TypeStreamEnded:
				var se wire.StreamEnded
				json.Unmarshal(body, &se) //nolint:errcheck
				fc.mu.Lock()
				fc.ended = append(fc.ended, se)
				fc.mu.Unlock()
				return nil, nil
			case wire.TypeRecordingDone:
				var rd wire.RecordingDone
				json.Unmarshal(body, &rd) //nolint:errcheck
				fc.mu.Lock()
				fc.recorded = append(fc.recorded, rd)
				fc.mu.Unlock()
				return nil, nil
			}
			return nil, nil
		}, nil)
		peer.Start()
	}
}

func (fc *fakeCoordinator) Addr() string { return fc.ln.Addr().String() }

func (fc *fakeCoordinator) peer(t *testing.T) *wire.Peer {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		fc.mu.Lock()
		p := fc.msuPeer
		fc.mu.Unlock()
		if p != nil {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatal("MSU never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (fc *fakeCoordinator) registrations() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.regs
}

func (fc *fakeCoordinator) endedCount() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return len(fc.ended)
}

func (fc *fakeCoordinator) Close() {
	fc.ln.Close()
	fc.mu.Lock()
	p := fc.msuPeer
	fc.msuPeer = nil
	fc.mu.Unlock()
	if p != nil {
		p.Close()
	}
	fc.wg.Wait()
}

// vcrEndpoint is a minimal client control listener: it accepts the
// MSU's connection and exposes its peer.
type vcrEndpoint struct {
	ln   net.Listener
	peer chan *wire.Peer
}

func startVCREndpoint(t *testing.T) *vcrEndpoint {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	v := &vcrEndpoint{ln: ln, peer: make(chan *wire.Peer, 1)}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		v.peer <- wire.NewPeer(conn, func(string, json.RawMessage) (any, error) { return nil, nil }, nil)
	}()
	t.Cleanup(func() { ln.Close() })
	return v
}

func TestStopStreamFromCoordinator(t *testing.T) {
	vol := rawVolume(t)
	src := testStream(t, 10*time.Second)
	if err := Ingest(msufs.NewStore(vol), "movie", "mpeg1", src); err != nil {
		t.Fatal(err)
	}
	fc := startFakeCoordinator(t, "")
	m, err := New(Config{ID: "m0", Coordinator: fc.Addr(), Volumes: []*msufs.Volume{vol}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	peer := fc.peer(t)

	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	vcr := startVCREndpoint(t)

	spec := core.StreamSpec{
		Stream: 7, Group: 1, GroupSize: 1,
		Content: "movie", Type: "mpeg1", Protocol: "cbr", Class: core.ConstantRate,
		Rate: 1500 * units.Kbps, Disk: 0,
		DestAddr:  sink.LocalAddr().String(),
		ClientTCP: vcr.ln.Addr().String(),
	}
	if err := peer.Call(wire.TypeStartStream, wire.StartStream{Spec: spec}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-vcr.peer:
	case <-time.After(3 * time.Second):
		t.Fatal("MSU never dialled the VCR endpoint")
	}
	// Delivery flows.
	buf := make([]byte, 2048)
	sink.SetReadDeadline(time.Now().Add(3 * time.Second)) //nolint:errcheck
	if _, _, err := sink.ReadFromUDP(buf); err != nil {
		t.Fatalf("no data: %v", err)
	}

	// Coordinator-initiated stop (the rollback path): stream ends and
	// the MSU reports it.
	if err := peer.Notify(wire.TypeStopStream, wire.StopStream{Stream: 7}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for fc.endedCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream-ended never reported after stop-stream")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A second stop for an unknown stream is a harmless no-op.
	if err := peer.Notify(wire.TypeStopStream, wire.StopStream{Stream: 99}); err != nil {
		t.Fatal(err)
	}
}

func TestStartStreamRejections(t *testing.T) {
	vol := rawVolume(t)
	if err := Ingest(msufs.NewStore(vol), "movie", "mpeg1", testStream(t, time.Second)); err != nil {
		t.Fatal(err)
	}
	fc := startFakeCoordinator(t, "")
	m, err := New(Config{ID: "m0", Coordinator: fc.Addr(), Volumes: []*msufs.Volume{vol}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	peer := fc.peer(t)

	base := core.StreamSpec{
		Stream: 1, Group: 1, GroupSize: 1,
		Content: "movie", Type: "mpeg1", Protocol: "cbr",
		Rate: 1500 * units.Kbps, DestAddr: "127.0.0.1:9", ClientTCP: "127.0.0.1:9",
	}
	cases := []func(*core.StreamSpec){
		func(s *core.StreamSpec) { s.Disk = 5 },          // no such disk
		func(s *core.StreamSpec) { s.Content = "ghost" }, // no such content
		func(s *core.StreamSpec) { s.Protocol = "nope" }, // unknown protocol is caught at record; play ignores
		func(s *core.StreamSpec) { s.DestAddr = "not-an-addr" },
	}
	for i, mut := range cases {
		spec := base
		spec.Stream = core.StreamID(100 + i)
		mut(&spec)
		err := peer.Call(wire.TypeStartStream, wire.StartStream{Spec: spec}, nil)
		if i == 2 {
			continue // play path does not instantiate the protocol module
		}
		if err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Unknown message type.
	if err := peer.Call("bogus", struct{}{}, nil); err == nil {
		t.Error("unknown RPC accepted")
	}
}

func TestMSUReconnectsAfterCoordinatorRestart(t *testing.T) {
	vol := rawVolume(t)
	fc := startFakeCoordinator(t, "")
	addr := fc.Addr()
	m, err := New(Config{
		ID: "m0", Coordinator: addr,
		Volumes:           []*msufs.Volume{vol},
		ReconnectInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if fc.registrations() != 1 {
		t.Fatalf("registrations = %d", fc.registrations())
	}

	// Coordinator dies; a replacement comes up on the same address.
	fc.Close()
	time.Sleep(100 * time.Millisecond) // let the MSU notice and start retrying
	fc2 := startFakeCoordinator(t, addr)
	deadline := time.Now().Add(5 * time.Second)
	for fc2.registrations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("MSU never re-registered")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestMSUReconnectBackoffStopsOnClose(t *testing.T) {
	vol := rawVolume(t)
	fc := startFakeCoordinator(t, "")
	in := faultinject.New(faultinject.Options{})
	m, err := New(Config{
		ID: "m0", Coordinator: fc.Addr(),
		Volumes:           []*msufs.Volume{vol},
		ReconnectInterval: 10 * time.Millisecond,
		Dial:              in.Dial(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill the link and keep every redial failing; Close must still
	// return promptly, interrupting the backoff sleep.
	in.Partition(true)
	in.CutAll()
	time.Sleep(50 * time.Millisecond) // let the reconnect loop start
	done := make(chan error, 1)
	go func() { done <- m.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on the reconnect backoff")
	}
}

func TestGroupClientDialRetries(t *testing.T) {
	vol := rawVolume(t)
	src := testStream(t, 5*time.Second)
	if err := Ingest(msufs.NewStore(vol), "movie", "mpeg1", src); err != nil {
		t.Fatal(err)
	}
	fc := startFakeCoordinator(t, "")
	in := faultinject.New(faultinject.Options{})
	m, err := New(Config{
		ID: "m0", Coordinator: fc.Addr(),
		Volumes: []*msufs.Volume{vol},
		Dial:    in.Dial(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	peer := fc.peer(t)

	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	vcr := startVCREndpoint(t)

	// The first two dials to the client's control port fail; the group
	// must retry instead of abandoning the reserved stream.
	in.FailDials(2)
	spec := core.StreamSpec{
		Stream: 7, Group: 1, GroupSize: 1,
		Content: "movie", Type: "mpeg1", Protocol: "cbr", Class: core.ConstantRate,
		Rate: 1500 * units.Kbps, Disk: 0,
		DestAddr:  sink.LocalAddr().String(),
		ClientTCP: vcr.ln.Addr().String(),
	}
	if err := peer.Call(wire.TypeStartStream, wire.StartStream{Spec: spec}, nil); err != nil {
		t.Fatalf("start-stream failed despite dial retries: %v", err)
	}
	select {
	case <-vcr.peer:
	case <-time.After(3 * time.Second):
		t.Fatal("MSU never reached the VCR endpoint")
	}
}

func TestGroupClientDialGivesUp(t *testing.T) {
	vol := rawVolume(t)
	if err := Ingest(msufs.NewStore(vol), "movie", "mpeg1", testStream(t, time.Second)); err != nil {
		t.Fatal(err)
	}
	fc := startFakeCoordinator(t, "")
	in := faultinject.New(faultinject.Options{})
	m, err := New(Config{
		ID: "m0", Coordinator: fc.Addr(),
		Volumes: []*msufs.Volume{vol},
		Dial:    in.Dial(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	peer := fc.peer(t)

	in.FailDials(100) // exceeds the retry budget
	spec := core.StreamSpec{
		Stream: 8, Group: 2, GroupSize: 1,
		Content: "movie", Type: "mpeg1", Protocol: "cbr", Class: core.ConstantRate,
		Rate: 1500 * units.Kbps, Disk: 0,
		DestAddr:  "127.0.0.1:9",
		ClientTCP: "127.0.0.1:9",
	}
	err = peer.Call(wire.TypeStartStream, wire.StartStream{Spec: spec}, nil)
	if err == nil {
		t.Fatal("start-stream succeeded with an unreachable client")
	}
	// The failed group must not linger.
	deadline := time.Now().Add(3 * time.Second)
	for {
		m.mu.Lock()
		n := len(m.groups)
		m.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d groups linger after dial failure", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
