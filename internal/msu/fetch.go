package msu

import (
	"fmt"
	"time"

	"calliope/internal/ibtree"
	"calliope/internal/iosched"
	"calliope/internal/queue"
)

// fetcher pipelines a player's page reads through the per-volume I/O
// schedulers (§2.2.1, §2.3.3): it keeps up to readAheadPages requests
// staged ahead of the cursor, each tagged with the delivery deadline of
// the page's first packet, so the per-disk elevator can order and
// coalesce across every concurrent player's demand. On striped content
// consecutive pages land on adjacent volumes, so the staged requests
// fan out across min(readAheadPages, width) disks in parallel.
type fetcher struct {
	p     *player
	pages int64 // total pages in the tree
	next  int64 // next page index to stage
	// pageDur approximates one page's play time, for deadlines; epoch
	// anchors them to the delivery timeline (an estimate of netLoop's
	// epoch — deadlines order and bound scheduler rounds, they are not
	// hard real-time).
	pageDur time.Duration
	epoch   time.Time
	slots   []fetchSlot
	head    int // ring index of the oldest staged slot
	n       int // staged slots
}

// fetchSlot is one staged page: the pinned destination page, the
// scheduler request reading into it, and its completion channel.
type fetchSlot struct {
	idx     int64
	page    *queue.PageRef
	hit     bool // satisfied from the RAM cache, no I/O issued
	insert  bool // page came from cache.Alloc: insert after verify
	pending bool // submitted to a scheduler, completion not yet taken
	err     error
	req     iosched.Request
	c       chan *iosched.Request
}

// newFetcher builds the player's prefetch ring, or returns nil when the
// direct-read path applies: Config.DirectIO, or content not backed by a
// store file (test fixtures reading through the cursor only).
func newFetcher(p *player) *fetcher {
	if p.file == nil || len(p.s.m.scheds) == 0 {
		return nil
	}
	pages := p.tree.Meta().Pages
	f := &fetcher{
		p:     p,
		pages: pages,
		epoch: time.Now(),
		slots: make([]fetchSlot, readAheadPages),
	}
	if pages > 0 {
		f.pageDur = p.tree.Length() / time.Duration(pages)
	}
	for i := range f.slots {
		f.slots[i].c = make(chan *iosched.Request, 1)
	}
	return f
}

// deadline is the delivery time of page idx's first packet on the
// stream clock: the fetcher's epoch plus the page's content time
// relative to the start position, floored at the epoch (pages at or
// before the start are wanted immediately).
func (f *fetcher) deadline(idx int64) time.Time {
	d := time.Duration(idx)*f.pageDur - f.p.startPos
	if d < 0 {
		d = 0
	}
	return f.epoch.Add(d)
}

// nextPage produces the page NextPage announced: it restarts the
// pipeline if the cursor moved, tops the ring up, waits for the head
// slot's device completion, and attaches the page to the cursor.
// Returns (nil, nil) only when cancelled.
func (f *fetcher) nextPage(cur *ibtree.PageCursor, want int64) (*queue.PageRef, error) {
	p := f.p
	if f.n == 0 || f.slots[f.head].idx != want {
		// First page, or the cursor moved (players are sequential, so
		// in practice this is just startup): restage at want.
		f.abort()
		f.next = want
	}
	f.fill()
	if f.n == 0 {
		return nil, nil // cancelled while waiting for a free page
	}
	slot := &f.slots[f.head]
	if slot.pending {
		select {
		case <-p.cancel:
			// The buffer belongs to the scheduler until completion:
			// abort (deferred in diskLoop) waits before releasing.
			return nil, nil
		case req := <-slot.c:
			slot.pending = false
			slot.err = req.Err
		}
	}
	page := slot.page
	err := slot.err
	hit, insert := slot.hit, slot.insert
	slot.page = nil
	f.head = (f.head + 1) % len(f.slots)
	f.n--
	if err != nil {
		page.Release()
		return nil, err
	}
	ok, aerr := cur.AttachPage(page.Bytes())
	if aerr != nil || !ok {
		page.Release()
		if hit {
			// The cached entry failed verification: purge it and fall
			// back to a fresh synchronous read.
			p.cache.Invalidate(p.cname, want)
			p.s.m.logf("stream %d: cached page %d invalid: %v", p.s.spec.Stream, want, aerr)
			return p.loadNextPage(cur, want)
		}
		if aerr == nil { // impossible: NextPage said this page exists
			aerr = fmt.Errorf("msu: page %d vanished mid-read", want)
		}
		return nil, aerr
	}
	if hit {
		p.s.m.obs.cacheHits.Inc()
	} else {
		p.s.m.obs.pagesRead.Inc()
	}
	if insert {
		p.cache.Insert(p.cname, want, page)
	}
	return page, nil
}

// fill tops up the ring. The first request blocks for a destination
// page when the ring is empty — the player cannot advance without it —
// while read-ahead beyond that takes only pages that are free right
// now, so prefetch never waits on buffers the network side is still
// draining.
func (f *fetcher) fill() {
	for f.n < len(f.slots) && f.next < f.pages {
		if !f.issueOne(f.n == 0) {
			return
		}
	}
}

// issueOne stages the next page into the ring's tail slot: a cache hit
// pins the cached page outright; a miss acquires a destination page
// (from the cache when allocatable, so later players share the read,
// else the private pool) and submits the read to the owning volume's
// scheduler. block selects whether a pool page is worth waiting for.
// Returns false without staging when no page is available or the wait
// was cancelled.
func (f *fetcher) issueOne(block bool) bool {
	p := f.p
	idx := f.next
	slot := &f.slots[(f.head+f.n)%len(f.slots)]
	slot.idx = idx
	slot.hit = false
	slot.insert = false
	slot.pending = false
	slot.err = nil
	if p.cache != nil {
		if hit := p.cache.Lookup(p.cname, idx); hit != nil {
			slot.page = hit
			slot.hit = true
			f.next++
			f.n++
			return true
		}
	}
	var page *queue.PageRef
	if p.cache != nil {
		if page = p.cache.Alloc(); page != nil {
			slot.insert = true
		}
	}
	if page == nil {
		if block {
			page = p.pool.Get(p.cancel)
		} else {
			page = p.pool.TryGet()
		}
		if page == nil {
			slot.insert = false
			return false
		}
	}
	slot.page = page
	vol, off, err := p.file.Locate(idx)
	if err != nil {
		slot.err = err
		f.next++
		f.n++
		return true
	}
	if sched := p.s.m.schedFor(vol); sched != nil {
		slot.req = iosched.Request{Off: off, Buf: page.Bytes(), Deadline: f.deadline(idx), C: slot.c}
		slot.pending = true
		sched.Submit(&slot.req)
	} else {
		// A volume outside the scheduler set — unreachable from New's
		// construction, but read it directly rather than fail.
		slot.err = vol.Device().ReadAt(page.Bytes(), off)
	}
	f.next++
	f.n++
	return true
}

// abort unwinds the ring: it waits out any in-flight scheduler request
// (the destination page is not reusable until the device is done with
// it) and releases every staged page.
func (f *fetcher) abort() {
	for f.n > 0 {
		slot := &f.slots[f.head]
		if slot.pending {
			<-slot.c
			slot.pending = false
		}
		if slot.page != nil {
			slot.page.Release()
			slot.page = nil
		}
		f.head = (f.head + 1) % len(f.slots)
		f.n--
	}
}
