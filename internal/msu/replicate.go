package msu

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"calliope/internal/core"
	"calliope/internal/msufs"
	"calliope/internal/replicate"
	"calliope/internal/wire"
)

// The destination side of MSU-to-MSU replication: a Coordinator
// replicate order spawns a background pull job that dials the source's
// transfer port, writes the content through msufs into freshly
// allocated blocks, survives dropped connections by resuming at the
// next needed block, and commits only after the whole file set is
// verified. The partial copy carries no attributes at all until that
// commit, so registration (buildHello) and delivery can never see a
// half-replica; an abort — Coordinator order, content deletion, or MSU
// shutdown — frees every partially written block.

// replAttempts bounds transfer (re)dials before the job reports
// failure; replRetryBase spaces them.
const (
	replAttempts  = 3
	replRetryBase = 250 * time.Millisecond
)

// errReplAborted marks a job torn down on purpose (Coordinator abort or
// MSU shutdown): clean up silently, no failure report.
var errReplAborted = errors.New("msu: replication aborted")

// replJob is one inbound copy.
type replJob struct {
	m     *MSU
	req   wire.Replicate
	store msufs.Store

	mu      sync.Mutex
	conn    net.Conn // live transfer connection, nil between dials
	aborted bool
	abortCh chan struct{} // closed on abort; interrupts retry sleeps

	// files tracks every file this job created, by name, in arrival
	// order. Only the job goroutine touches the map once run starts.
	files map[string]*replFile
	order []string
	bytes int64 // payload bytes written across all attempts
}

// replFile is one destination file mid-copy.
type replFile struct {
	file     msufs.StoreFile
	hdr      replicate.FileHeader // attrs withheld until commit
	next     int64                // next block needed (resume point)
	complete bool
}

// handleReplicate acks a Coordinator replicate order and runs the copy
// in the background.
func (m *MSU) handleReplicate(req wire.Replicate) error {
	if req.Disk < 0 || req.Disk >= len(m.stores) {
		return fmt.Errorf("%w: disk %d of %d", core.ErrBadRequest, req.Disk, len(m.stores))
	}
	store := m.stores[req.Disk]
	if st, err := store.Stat(req.Content); err == nil && st.Attrs[AttrType] != "" {
		return fmt.Errorf("%w: %q already stored here", core.ErrBadRequest, req.Content)
	}
	job := &replJob{
		m: m, req: req, store: store,
		abortCh: make(chan struct{}),
		files:   make(map[string]*replFile),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return core.ErrSessionClosed
	}
	if m.repl == nil {
		m.repl = make(map[uint64]*replJob)
	}
	if _, dup := m.repl[req.ID]; dup {
		m.mu.Unlock()
		return fmt.Errorf("%w: replication %d already running", core.ErrBadRequest, req.ID)
	}
	m.repl[req.ID] = job
	m.wg.Add(1)
	m.mu.Unlock()
	go job.run()
	return nil
}

// abortReplication tears down one job (or silently ignores an unknown
// id: the job may just have finished).
func (m *MSU) abortReplication(id uint64) {
	m.mu.Lock()
	job := m.repl[id]
	m.mu.Unlock()
	if job != nil {
		job.abort()
	}
}

// abortAllReplications severs every in-flight copy; Close calls it
// before waiting on the work group.
func (m *MSU) abortAllReplications() {
	m.mu.Lock()
	jobs := make([]*replJob, 0, len(m.repl))
	for _, j := range m.repl {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.abort()
	}
}

// abort flags the job and severs its current transfer connection, which
// unblocks the Receive loop with a read error.
func (j *replJob) abort() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.aborted {
		return
	}
	j.aborted = true
	close(j.abortCh)
	if j.conn != nil {
		j.conn.Close() //nolint:errcheck // severing; the job cleans up
	}
}

func (j *replJob) isAborted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.aborted
}

// setConn swaps in the current transfer connection; false means the job
// was aborted while dialing and the caller must close conn itself.
func (j *replJob) setConn(conn net.Conn) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.aborted {
		return false
	}
	j.conn = conn
	return true
}

// run drives the copy to commit or cleanup, then reports to the
// Coordinator.
func (j *replJob) run() {
	m := j.m
	defer m.wg.Done()
	err := j.pull()
	if err == nil {
		err = j.commit()
	}
	m.mu.Lock()
	delete(m.repl, j.req.ID)
	m.mu.Unlock()
	if err == nil {
		j.report()
		return
	}
	j.cleanup()
	if errors.Is(err, errReplAborted) {
		m.logf("replication %d (%q): aborted, partial blocks freed", j.req.ID, j.req.Content)
		return
	}
	m.logf("replication %d (%q): %v", j.req.ID, j.req.Content, err)
	m.notifyCoordinator(wire.TypeReplicateFailed, wire.ReplicateFailed{
		ID: j.req.ID, Content: j.req.Content, Reason: err.Error(), Bytes: j.bytes,
	})
}

// pull runs transfer attempts until the file set is fully received.
func (j *replJob) pull() error {
	var err error
	for attempt := 0; attempt < replAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(replRetryBase << (attempt - 1))
			select {
			case <-j.abortCh:
				t.Stop()
				return errReplAborted
			case <-j.m.quit:
				t.Stop()
				return errReplAborted
			case <-t.C:
			}
		}
		if err = j.attempt(); err == nil {
			return nil
		}
		if j.isAborted() {
			return errReplAborted
		}
	}
	return err
}

// attempt dials the source and receives as much as it can; nil means
// the whole file set (main file plus companions) arrived and verified
// block counts.
func (j *replJob) attempt() error {
	m := j.m
	conn, err := m.cfg.Dial("tcp", j.req.Source)
	if err != nil {
		return fmt.Errorf("dialing source %s: %w", j.req.Source, err)
	}
	if !j.setConn(conn) {
		conn.Close() //nolint:errcheck // aborted while dialing
		return errReplAborted
	}
	defer func() {
		j.setConn(nil)
		conn.Close() //nolint:errcheck // second close after abort is fine
	}()
	req := replicate.Request{Content: j.req.Content, Rate: int64(j.req.Rate)}
	for _, name := range j.order {
		req.Resume = append(req.Resume, replicate.FileOffset{Name: name, NextBlock: j.files[name].next})
	}
	if err := replicate.WriteRequest(conn, req); err != nil {
		return fmt.Errorf("sending request: %w", err)
	}
	sum, err := replicate.Receive(conn, j.openFile)
	j.bytes += sum.Bytes
	if err != nil {
		return fmt.Errorf("receiving %q: %w", j.req.Content, err)
	}
	main := j.files[j.req.Content]
	if main == nil || !main.complete {
		return fmt.Errorf("source finished without sending %q", j.req.Content)
	}
	for _, name := range j.order {
		if !j.files[name].complete {
			return fmt.Errorf("source finished with %q incomplete", name)
		}
	}
	return nil
}

// openFile is the Receive sink factory: first sight of a file allocates
// it (with no attributes — invisible to registration until commit); a
// resumed file must pick up exactly at its next needed block.
func (j *replJob) openFile(h replicate.FileHeader) (replicate.Sink, error) {
	if h.BlockSize != j.store.BlockSize() {
		return nil, fmt.Errorf("source block size %d, destination %d", h.BlockSize, j.store.BlockSize())
	}
	rf := j.files[h.Name]
	if rf == nil {
		f, err := j.store.Create(h.Name, h.Blocks*int64(h.BlockSize), nil)
		if err != nil {
			return nil, fmt.Errorf("allocating %q: %w", h.Name, err)
		}
		rf = &replFile{file: f, hdr: h}
		j.files[h.Name] = rf
		j.order = append(j.order, h.Name)
	}
	if h.StartBlock != rf.next {
		return nil, fmt.Errorf("%q resumes at block %d, need %d", h.Name, h.StartBlock, rf.next)
	}
	rf.hdr.Attrs = h.Attrs // latest attrs win on resume
	return (*replSink)(rf), nil
}

// replSink adapts a replFile to the copy engine's Sink.
type replSink replFile

func (s *replSink) WriteBlock(i int64, p []byte) error {
	if err := s.file.WriteBlock(i, p); err != nil {
		return err
	}
	s.next = i + 1
	return nil
}

func (s *replSink) Close() error {
	s.complete = true
	return nil
}

// commit makes the replica durable and visible: trim and flush every
// file, re-open the main file's IB-tree from disk as the verification
// read-back, link the attributes, and set the content-type attribute
// last — the point at which registration starts declaring the replica.
func (j *replJob) commit() error {
	for _, name := range j.order {
		rf := j.files[name]
		if rf.file.Size() != rf.hdr.Size {
			return fmt.Errorf("%q has %d bytes, source sent %d", name, rf.file.Size(), rf.hdr.Size)
		}
		if err := rf.file.Commit(); err != nil {
			return fmt.Errorf("committing %q: %w", name, err)
		}
	}
	for _, name := range j.order {
		rf := j.files[name]
		for k, v := range rf.hdr.Attrs {
			if name == j.req.Content && k == AttrType {
				continue // the visibility bit comes last
			}
			if err := j.store.SetAttr(name, k, v); err != nil {
				return fmt.Errorf("attr %q on %q: %w", k, name, err)
			}
		}
	}
	// Verification: open the replica the way a player would — the
	// IB-tree metadata must parse and its root page must read back from
	// the freshly written blocks.
	f, err := j.store.Open(j.req.Content)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	tree, err := treeFromAttrs(f, j.store.BlockSize())
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	cur, err := tree.PageCursorAt(0)
	if err != nil {
		return fmt.Errorf("verify: seek: %w", err)
	}
	if ok, err := cur.LoadPage(make([]byte, j.store.BlockSize())); err != nil || !ok {
		return fmt.Errorf("verify: first page unreadable (ok=%v): %w", ok, err)
	}
	typ := j.files[j.req.Content].hdr.Attrs[AttrType]
	if typ == "" {
		return fmt.Errorf("source sent %q without a content type", j.req.Content)
	}
	if err := j.store.SetAttr(j.req.Content, AttrType, typ); err != nil {
		return fmt.Errorf("typing %q: %w", j.req.Content, err)
	}
	return nil
}

// report tells the Coordinator the replica is committed. The answer is
// the Coordinator's journal write: an application-level rejection means
// the content was deleted mid-copy, so the replica is removed again. A
// transport failure keeps the replica — the next registration hello
// declares it and the catalog reconciles.
func (j *replJob) report() {
	m := j.m
	done := wire.ReplicateDone{
		ID: j.req.ID, Content: j.req.Content, Type: j.req.Type,
		Disk: j.req.Disk, Size: j.req.Size, Length: j.req.Length,
		HasFast: j.req.HasFast, Bytes: j.bytes,
	}
	m.mu.Lock()
	peer := m.peer
	m.mu.Unlock()
	if peer == nil {
		m.logf("replication %d (%q): committed; coordinator link down, hello will declare it", j.req.ID, j.req.Content)
		return
	}
	err := peer.Call(wire.TypeReplicateDone, done, nil)
	switch {
	case err == nil:
		m.logf("replication %d (%q): committed (%d bytes)", j.req.ID, j.req.Content, j.bytes)
	case errors.Is(err, wire.ErrRemote):
		// The Coordinator refused the location — the content was
		// deleted while we copied. Take the replica back out.
		m.logf("replication %d (%q): rejected (%v), removing replica", j.req.ID, j.req.Content, err)
		j.cleanup()
	default:
		m.logf("replication %d (%q): committed; done report lost (%v)", j.req.ID, j.req.Content, err)
	}
}

// cleanup removes every file the job created, freeing its blocks, and
// purges any cached pages.
func (j *replJob) cleanup() {
	for _, name := range j.order {
		j.store.Remove(name) //nolint:errcheck // best effort; a racing delete already removed it
		if c := j.m.cacheFor(j.req.Disk); c != nil {
			c.Drop(name)
		}
	}
}
