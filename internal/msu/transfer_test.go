package msu

import (
	"testing"
	"time"
)

// TestReplicateRatePacer: the transfer pacer holds a copy at its
// granted rate — replication rides idle bandwidth and must never
// burst past the Coordinator's grant (DESIGN.md §3h).
func TestReplicateRatePacer(t *testing.T) {
	pace := ratePacer(1000 * 1000) // 1 Mbit/s grant
	start := time.Now()
	for i := 0; i < 8; i++ {
		pace(8 * 1024) // 64 KB total → ~524 ms at 1 Mbit/s
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("64 KB paced at 1 Mbit/s took only %v", elapsed)
	}

	if ratePacer(0) != nil {
		t.Fatal("zero rate must disable pacing")
	}

	// A stall is forgiven, not banked: after a long gap the pacer must
	// not let the next writes burst to "catch up".
	pace = ratePacer(1000 * 1000)
	pace(8 * 1024)
	time.Sleep(300 * time.Millisecond) // simulated scheduler stall
	start = time.Now()
	for i := 0; i < 4; i++ {
		pace(8 * 1024) // 32 KB → ~262 ms at the grant
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("post-stall writes burst through in %v", elapsed)
	}
}
