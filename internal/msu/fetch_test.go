package msu

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"calliope/internal/blockdev"
	"calliope/internal/core"
	"calliope/internal/msufs"
	"calliope/internal/units"
)

// gaugeDev tracks how many reads are on the wire at once across every
// member device sharing the same counters, holding each read open
// briefly so genuine concurrency registers. It deliberately does not
// implement blockdev.VectorReader: coalesced transfers fall back to
// per-buffer reads and each one is gauged.
type gaugeDev struct {
	blockdev.BlockDevice
	cur, max *atomic.Int64
}

func (d *gaugeDev) ReadAt(p []byte, off int64) error {
	c := d.cur.Add(1)
	for {
		m := d.max.Load()
		if c <= m || d.max.CompareAndSwap(m, c) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	err := d.BlockDevice.ReadAt(p, off)
	d.cur.Add(-1)
	return err
}

// TestStripedReadOverlap verifies the paper's striped-layout payoff
// (§2.3.3) survives the scheduler path: consecutive pages of striped
// content land on adjacent member volumes, each with its own scheduler,
// so one player's prefetch ring — and several players together — keep
// multiple spindles busy at once instead of reading one block at a
// time.
func TestStripedReadOverlap(t *testing.T) {
	const width, players = 3, 3
	var cur, max atomic.Int64
	vols := make([]*msufs.Volume, width)
	counts := make([]*blockdev.Counting, width)
	for i := range vols {
		mem, err := blockdev.NewMem(8 * int64(units.MB))
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = blockdev.NewCounting(&gaugeDev{BlockDevice: mem, cur: &cur, max: &max})
		vols[i], err = msufs.Format(counts[i], msufs.Options{BlockSize: 64 * 1024, MetaSize: 256 * 1024})
		if err != nil {
			t.Fatal(err)
		}
	}
	m := newTestMSU(t, false, true, vols...)
	streams := make([]*stream, players)
	for i := range streams {
		name := fmt.Sprintf("wide-%d", i)
		if err := Ingest(m.stores[0], name, "mpeg1", flatPackets(256)); err != nil {
			t.Fatal(err)
		}
		streams[i] = openTestStream(t, m, 0, core.StreamID(i+1), name)
	}

	// Count only delivery I/O: ingest and open already touched the
	// devices.
	max.Store(0)
	for _, c := range counts {
		c.Reset()
	}
	runSession(t, streams)

	if got := max.Load(); got < 2 {
		t.Errorf("peak in-flight reads = %d, want at least 2: striped prefetch never overlapped members", got)
	}
	var reads [width]int64
	for i, c := range counts {
		reads[i] = c.Reads.Load()
		if reads[i] < 2 {
			t.Errorf("member %d served %d reads: striped content should spread across every member", i, reads[i])
		}
	}
	t.Logf("peak in-flight %d, member reads %v", max.Load(), reads)

	// Regression: ioStats must actually accumulate the per-member
	// scheduler counters (Add returns the merged value — dropping it
	// reported every disk as idle and the status `io` line never
	// printed).
	io := m.ioStats(0)
	if io.Requests == 0 || io.Rounds == 0 {
		t.Errorf("ioStats(0) = %+v: scheduler counters not aggregated across members", io)
	}
}
