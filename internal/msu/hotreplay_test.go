package msu

// Hot-content replay through the RAM interval cache (DESIGN.md §3e):
// once one viewer has pulled a title off disk, N concurrent followers
// must replay it almost entirely from RAM — ≥90% fewer block reads
// than the uncached ablation — while the delivery path stays zero-copy
// and allocation-free per packet.

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"calliope/internal/cache"
	"calliope/internal/core"
	"calliope/internal/ibtree"
	"calliope/internal/protocol"
	"calliope/internal/queue"
)

// countingBlocks wraps the in-memory BlockFile and counts block reads,
// the denominator of the cache's disk-savings claim. Safe for the
// concurrent readers the replay test spawns (the underlying map is
// read-only once the tree is built).
type countingBlocks struct {
	inner *benchBlocks
	reads atomic.Int64
}

func (c *countingBlocks) WriteBlock(i int64, p []byte) error { return c.inner.WriteBlock(i, p) }
func (c *countingBlocks) ReadBlock(i int64, p []byte) error {
	c.reads.Add(1)
	return c.inner.ReadBlock(i, p)
}
func (c *countingBlocks) BlockLen(i int64) int { return c.inner.BlockLen(i) }

// buildHotTree stores npkts channel-framed 4 KB packets at delivery
// time zero (flat-out replay, no pacing).
func buildHotTree(tb testing.TB, f ibtree.BlockFile, pageSize, npkts int) *ibtree.Tree {
	tb.Helper()
	bld, err := ibtree.NewBuilder(f, pageSize, ibtree.DefaultMaxKeys)
	if err != nil {
		tb.Fatal(err)
	}
	rec := protocol.EncodeStored(protocol.Data, make([]byte, 4096))
	for i := 0; i < npkts; i++ {
		if err := bld.Append(ibtree.Packet{Time: 0, Payload: rec}); err != nil {
			tb.Fatal(err)
		}
	}
	meta, err := bld.Finalize()
	if err != nil {
		tb.Fatal(err)
	}
	tree, err := ibtree.Open(f, pageSize, meta)
	if err != nil {
		tb.Fatal(err)
	}
	return tree
}

// hotMSU builds an in-package MSU whose disk 0 has a RAM cache of the
// given geometry.
func hotMSU(tb testing.TB, pageSize, pages int) *MSU {
	tb.Helper()
	pool, err := queue.NewPagePool(pageSize, pages)
	if err != nil {
		tb.Fatal(err)
	}
	return &MSU{caches: []*cache.Cache{cache.New(pool)}}
}

// hotStream wires a stream on MSU m to a throwaway localhost UDP sink.
func hotStream(tb testing.TB, m *MSU, tree *ibtree.Tree) *stream {
	tb.Helper()
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { sink.Close() })
	conn, err := net.DialUDP("udp", nil, sink.LocalAddr().(*net.UDPAddr))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { conn.Close() })
	return &stream{
		m:        m,
		spec:     core.StreamSpec{Stream: 1, Content: "blockbuster"},
		tree:     tree,
		length:   tree.Length(),
		speed:    core.Normal,
		dataConn: conn,
	}
}

// playToEOF runs one full delivery session. Callable from goroutines
// (Error, never Fatal).
func playToEOF(tb testing.TB, s *stream) {
	if err := s.playAt(core.Normal, 0); err != nil {
		tb.Error(err)
		return
	}
	for !s.atEOF() {
		time.Sleep(100 * time.Microsecond)
	}
	s.stopPlayer()
}

// TestHotReplayCacheSavesDiskReads: 8 concurrent players of one warmed
// title must issue at most a tenth of the uncached ablation's block
// reads (the ISSUE's ≥90% criterion). Runs under -race in CI.
func TestHotReplayCacheSavesDiskReads(t *testing.T) {
	const (
		pageSize = 64 * 1024
		npkts    = 512
		players  = 8
	)
	run := func(m *MSU, f *countingBlocks, tree *ibtree.Tree, warm bool) int64 {
		if warm {
			playToEOF(t, hotStream(t, m, tree))
		}
		start := f.reads.Load()
		var wg sync.WaitGroup
		for i := 0; i < players; i++ {
			s := hotStream(t, m, tree)
			wg.Add(1)
			go func() {
				defer wg.Done()
				playToEOF(t, s)
			}()
		}
		wg.Wait()
		return f.reads.Load() - start
	}

	fu := &countingBlocks{inner: newBenchBlocks(pageSize)}
	uncached := run(&MSU{}, fu, buildHotTree(t, fu, pageSize, npkts), false)

	fc := &countingBlocks{inner: newBenchBlocks(pageSize)}
	m := hotMSU(t, pageSize, 64) // 64 pages ≳ the title's ~35
	cached := run(m, fc, buildHotTree(t, fc, pageSize, npkts), true)

	if uncached == 0 {
		t.Fatal("ablation issued no reads; the counter is broken")
	}
	if cached*10 > uncached {
		t.Fatalf("cached replay: %d block reads, uncached: %d — less than 90%% saved", cached, uncached)
	}
	st := m.caches[0].Stats()
	if st.Hits == 0 {
		t.Fatal("no cache hits during replay")
	}
	t.Logf("block reads: %d uncached → %d cached (%.1f%% saved), cache %v",
		uncached, cached, 100*(1-float64(cached)/float64(uncached)), st)
}

// BenchmarkPlayerHotReplay measures the cache-hit delivery path end to
// end: every data page comes from RAM (only the IB-tree index descent
// touches the disk), payloads alias cached page memory to the UDP
// write, and steady state must stay at 0 allocs per delivered packet.
func BenchmarkPlayerHotReplay(b *testing.B) {
	const npkts = 1 << 13
	f := &countingBlocks{inner: newBenchBlocks(benchPageSize)}
	tree := buildHotTree(b, f, benchPageSize, npkts)
	m := hotMSU(b, benchPageSize, 160)
	s := hotStream(b, m, tree)
	playToEOF(b, s) // warm: after this the whole title is resident
	f.reads.Store(0)
	b.ReportAllocs()
	b.SetBytes(4096)
	b.ResetTimer()
	delivered := 0
	for delivered < b.N {
		playToEOF(b, s)
		delivered += npkts
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(f.reads.Load())/float64(delivered), "diskreads/pkt")
}
