package msu

// Benchmarks for the disk→queue→socket delivery path (§2.3). The
// zero-copy path must show 0 allocs per delivered packet in steady
// state; the legacy bench preserves the pre-rewrite technique (per-read
// *Packet allocation, payload copy into a pooled 64 KB buffer, timer
// allocation per pacing wait, polling on the empty queue) as the
// before/after baseline — see DESIGN.md §4.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"calliope/internal/core"
	"calliope/internal/ibtree"
	"calliope/internal/protocol"
	"calliope/internal/queue"
)

// benchBlocks is an in-memory BlockFile (the bench isolates the memory
// path, as §3.2.3's diskless experiment does).
type benchBlocks struct {
	bs     int
	blocks map[int64][]byte
}

func newBenchBlocks(bs int) *benchBlocks { return &benchBlocks{bs: bs, blocks: map[int64][]byte{}} }

func (m *benchBlocks) WriteBlock(i int64, p []byte) error {
	b := make([]byte, len(p))
	copy(b, p)
	m.blocks[i] = b
	return nil
}

func (m *benchBlocks) ReadBlock(i int64, p []byte) error {
	b, ok := m.blocks[i]
	if !ok {
		return fmt.Errorf("benchBlocks: no block %d", i)
	}
	copy(p, b)
	return nil
}

func (m *benchBlocks) BlockLen(i int64) int { return len(m.blocks[i]) }

// benchPageSize uses the paper's 256 KB data pages.
const benchPageSize = 256 * 1024

// buildBenchTree stores npkts channel-framed 4 KB packets, all at
// delivery time zero so the player runs flat out (pure path cost, no
// pacing waits).
func buildBenchTree(b *testing.B, npkts int) *ibtree.Tree {
	b.Helper()
	f := newBenchBlocks(benchPageSize)
	bld, err := ibtree.NewBuilder(f, benchPageSize, ibtree.DefaultMaxKeys)
	if err != nil {
		b.Fatal(err)
	}
	rec := protocol.EncodeStored(protocol.Data, make([]byte, 4096))
	for i := 0; i < npkts; i++ {
		if err := bld.Append(ibtree.Packet{Time: 0, Payload: rec}); err != nil {
			b.Fatal(err)
		}
	}
	meta, err := bld.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	tree, err := ibtree.Open(f, benchPageSize, meta)
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

// benchStream wires a stream to a throwaway localhost UDP sink.
func benchStream(b *testing.B, tree *ibtree.Tree) *stream {
	b.Helper()
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sink.Close() })
	conn, err := net.DialUDP("udp", nil, sink.LocalAddr().(*net.UDPAddr))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { conn.Close() })
	return &stream{
		m:        &MSU{},
		spec:     core.StreamSpec{Stream: 1},
		tree:     tree,
		length:   tree.Length(),
		speed:    core.Normal,
		dataConn: conn,
	}
}

// benchPackets is the per-session packet count; sessions repeat until
// b.N packets have been delivered.
const benchPackets = 1 << 15

// BenchmarkPlayerDeliveryPath measures the zero-copy player end to end:
// IB-tree page reads into refcounted pool pages, descriptor queue,
// direct-from-page UDP writes. One op is one delivered packet; in
// steady state it must report 0 allocs/op.
func BenchmarkPlayerDeliveryPath(b *testing.B) {
	tree := buildBenchTree(b, benchPackets)
	s := benchStream(b, tree)
	b.ReportAllocs()
	b.SetBytes(4096)
	b.ResetTimer()
	delivered := 0
	for delivered < b.N {
		if err := s.playAt(core.Normal, 0); err != nil {
			b.Fatal(err)
		}
		for !s.atEOF() {
			time.Sleep(50 * time.Microsecond)
		}
		s.stopPlayer()
		delivered += benchPackets
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkPlayerDeliveryPathLegacy preserves the pre-rewrite data
// path: per-packet *Packet allocation out of the cursor, payload copy
// into a pooled 64 KB buffer, a fresh timer per pacing wait and
// time.After polling on the empty queue. Kept as the ablation baseline
// the zero-copy path is judged against.
func BenchmarkPlayerDeliveryPathLegacy(b *testing.B) {
	tree := buildBenchTree(b, benchPackets)
	s := benchStream(b, tree)
	b.ReportAllocs()
	b.SetBytes(4096)
	b.ResetTimer()
	delivered := 0
	for delivered < b.N {
		legacyDeliver(b, s, tree)
		delivered += benchPackets
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/s")
}

// legacyItem mirrors the old qItem: a copied payload in the queue.
type legacyItem struct {
	t       time.Duration
	payload []byte
	eof     bool
}

// legacyDeliver replays one session of the pre-zero-copy player.
func legacyDeliver(b *testing.B, s *stream, tree *ibtree.Tree) {
	pool, err := queue.NewBufferPool(64*1024, queueDepth/4)
	if err != nil {
		b.Fatal(err)
	}
	q := queue.NewSPSC[legacyItem](queueDepth)
	cancel := make(chan struct{})
	diskDone := make(chan struct{})
	go func() { // the old disk process: copy each payload out of the page
		defer close(diskDone)
		cur, err := tree.SeekTime(0)
		if err != nil {
			return
		}
		for {
			pkt, err := cur.Next()
			if err != nil {
				return
			}
			if pkt == nil {
				for !q.Enqueue(legacyItem{eof: true}) {
					time.Sleep(time.Millisecond)
				}
				return
			}
			_, payload, derr := protocol.DecodeStored(pkt.Payload)
			if derr != nil {
				payload = pkt.Payload
			}
			buf := pool.Get()
			if len(payload) > len(buf) {
				buf = make([]byte, len(payload))
			}
			n := copy(buf, payload)
			for !q.Enqueue(legacyItem{t: pkt.Time, payload: buf[:n]}) {
				select {
				case <-cancel:
					return
				case <-time.After(time.Millisecond):
				}
			}
		}
	}()
	epoch := time.Now()
	for { // the old network process: poll, per-wait timers, pool returns
		it, ok := q.Dequeue()
		if !ok {
			select {
			case <-cancel:
				return
			case <-time.After(200 * time.Microsecond):
				continue
			}
		}
		if d := time.Until(epoch.Add(it.t)); d > 0 {
			t := time.NewTimer(d)
			<-t.C
		}
		if it.eof {
			close(cancel)
			<-diskDone
			return
		}
		if _, err := s.dataConn.Write(it.payload); err != nil {
			b.Error(err)
		}
		pool.Put(it.payload)
	}
}
