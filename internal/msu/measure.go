package msu

// This file is the non-test half of the live-path I/O benchmarks: the
// same session harness BenchmarkIOSched runs in-package is exposed
// here so cmd/calliope-bench can print the scheduler-vs-direct
// comparison and emit machine-readable results (-json, BENCH_8.json).

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"calliope/internal/blockdev"
	"calliope/internal/core"
	"calliope/internal/media"
	"calliope/internal/msufs"
	"calliope/internal/units"
)

// BenchResult is one machine-readable benchmark entry — the schema
// cmd/calliope-bench's -json flag emits. What one "op" is depends on
// the benchmark: a delivered packet for delivery, a full multi-reader
// session for iosched (PktsPerSec is comparable across both).
type BenchResult struct {
	Name        string  `json:"name"`
	PktsPerSec  float64 `json:"pkts_s"`
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	// Mechanical counters from the Sim-backed volume, per op; absent
	// for memory-backed measurements.
	SeekMBPerOp float64 `json:"seek_mb_op,omitempty"`
	XfersPerOp  float64 `json:"xfers_op,omitempty"`
}

// flatPackets builds 4 KB packets all at delivery time zero, so players
// run flat out and a measurement exercises the disk path, not pacing.
func flatPackets(n int) []media.Packet {
	pkts := make([]media.Packet, n)
	payload := make([]byte, 4096)
	for i := range pkts {
		pkts[i] = media.Packet{Time: 0, Payload: payload}
	}
	return pkts
}

// newSimVolume formats a volume over a mechanically-modelled Sim
// device (seek curve, rotational latency, media rate, scaled by
// 1/scale).
func newSimVolume(size int64, scale float64) (*msufs.Volume, error) {
	mem, err := blockdev.NewMem(size)
	if err != nil {
		return nil, err
	}
	cfg := blockdev.DefaultSimConfig()
	cfg.TimeScale = scale
	return msufs.Format(blockdev.NewSim(mem, cfg), msufs.Options{BlockSize: 64 * 1024, MetaSize: 256 * 1024})
}

// newBenchMSU builds an MSU over the given volumes without connecting
// a Coordinator (New never dials; only Start does). Caching is
// disabled so every page comes off the device and the measurement
// isolates the I/O path.
func newBenchMSU(direct, striped bool, vols ...*msufs.Volume) (*MSU, error) {
	return New(Config{
		ID:          "bench",
		Coordinator: "127.0.0.1:1",
		Volumes:     vols,
		Striped:     striped,
		DirectIO:    direct,
		CacheBytes:  -1,
	})
}

// openBenchStream wires a play stream for already-ingested content to
// a throwaway localhost UDP sink, bypassing the group/RPC machinery.
// The returned cleanup closes both sockets.
func openBenchStream(m *MSU, disk int, id core.StreamID, name string) (*stream, func(), error) {
	store := m.stores[disk]
	file, err := store.Open(name)
	if err != nil {
		return nil, nil, err
	}
	tree, err := treeFromAttrs(file, store.BlockSize())
	if err != nil {
		return nil, nil, err
	}
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.DialUDP("udp", nil, sink.LocalAddr().(*net.UDPAddr))
	if err != nil {
		sink.Close() //nolint:errcheck
		return nil, nil, err
	}
	s := &stream{
		m:        m,
		spec:     core.StreamSpec{Stream: id, Disk: disk},
		vol:      store,
		tree:     tree,
		file:     file,
		length:   tree.Length(),
		speed:    core.Normal,
		dataConn: conn,
	}
	cleanup := func() {
		conn.Close() //nolint:errcheck
		sink.Close() //nolint:errcheck
	}
	return s, cleanup, nil
}

// playSession plays every stream from the start to EOF concurrently,
// then stops the players.
func playSession(streams []*stream) error {
	for _, s := range streams {
		if err := s.playAt(core.Normal, 0); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, s := range streams {
		for !s.atEOF() {
			if time.Now().After(deadline) {
				return fmt.Errorf("msu: measurement session never reached EOF")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for _, s := range streams {
		s.stopPlayer()
	}
	return nil
}

// ioBench is one configured I/O measurement: an MSU over a Sim-backed
// volume with per-reader titles ingested and streams opened.
type ioBench struct {
	m       *MSU
	sim     *blockdev.Sim
	streams []*stream
	cleanup []func()
	packets int // per session
}

// newIOBench assembles the 24-reader harness over one Sim volume.
func newIOBench(readers, packetsPerTitle int, direct bool, scale float64) (*ioBench, error) {
	vol, err := newSimVolume(64*int64(units.MB), scale)
	if err != nil {
		return nil, err
	}
	m, err := newBenchMSU(direct, false, vol)
	if err != nil {
		return nil, err
	}
	ib := &ioBench{m: m, sim: vol.Device().(*blockdev.Sim), packets: readers * packetsPerTitle}
	pkts := flatPackets(packetsPerTitle)
	for i := 0; i < readers; i++ {
		name := fmt.Sprintf("title-%02d", i)
		if err := Ingest(m.stores[0], name, "mpeg1", pkts); err != nil {
			ib.close()
			return nil, err
		}
		s, cleanup, err := openBenchStream(m, 0, core.StreamID(i+1), name)
		if err != nil {
			ib.close()
			return nil, err
		}
		ib.streams = append(ib.streams, s)
		ib.cleanup = append(ib.cleanup, cleanup)
	}
	return ib, nil
}

func (ib *ioBench) close() {
	for _, s := range ib.streams {
		s.stopPlayer()
	}
	for _, f := range ib.cleanup {
		f()
	}
	ib.m.Close() //nolint:errcheck // bench teardown
}

// measure times the given number of sessions and assembles the entry.
func (ib *ioBench) measure(name string, sessions int) (BenchResult, error) {
	seekBase, opsBase := ib.sim.SeekBytes(), ib.sim.Ops()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < sessions; i++ {
		if err := playSession(ib.streams); err != nil {
			return BenchResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(sessions)
	return BenchResult{
		Name:        name,
		PktsPerSec:  float64(ib.packets) * n / elapsed.Seconds(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		SeekMBPerOp: float64(ib.sim.SeekBytes()-seekBase) / n / 1e6,
		XfersPerOp:  float64(ib.sim.Ops()-opsBase) / n,
	}, nil
}

// MeasureIOSched runs BenchmarkIOSched's comparison outside the
// testing framework: scheduler rounds vs the DirectIO ablation, 24
// concurrent readers over one mechanically-modelled volume, the given
// number of sessions each. One op is one full session.
func MeasureIOSched(sessions int) ([]BenchResult, error) {
	if sessions < 1 {
		sessions = 1
	}
	var out []BenchResult
	for _, variant := range []struct {
		name   string
		direct bool
	}{
		{"iosched/sched", false},
		{"iosched/direct", true},
	} {
		ib, err := newIOBench(24, 256, variant.direct, 100)
		if err != nil {
			return nil, err
		}
		res, err := ib.measure(variant.name, sessions)
		ib.close()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// MeasureDelivery times the zero-copy delivery path end to end — disk
// process, descriptor queue, UDP writes — on a memory-backed volume
// through the live scheduler path. One op is one delivered packet;
// allocations are amortized over the whole run, so a steady-state
// zero-allocation path reports a small fraction per packet.
func MeasureDelivery(sessions int) (BenchResult, error) {
	if sessions < 1 {
		sessions = 1
	}
	const packets = 8192
	mem, err := blockdev.NewMem(64 * int64(units.MB))
	if err != nil {
		return BenchResult{}, err
	}
	vol, err := msufs.Format(mem, msufs.Options{BlockSize: 64 * 1024, MetaSize: 256 * 1024})
	if err != nil {
		return BenchResult{}, err
	}
	m, err := newBenchMSU(false, false, vol)
	if err != nil {
		return BenchResult{}, err
	}
	defer m.Close() //nolint:errcheck // bench teardown
	if err := Ingest(m.stores[0], "title", "mpeg1", flatPackets(packets)); err != nil {
		return BenchResult{}, err
	}
	s, cleanup, err := openBenchStream(m, 0, 1, "title")
	if err != nil {
		return BenchResult{}, err
	}
	defer cleanup()
	defer s.stopPlayer()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < sessions; i++ {
		if err := playSession([]*stream{s}); err != nil {
			return BenchResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	total := float64(packets * sessions)
	return BenchResult{
		Name:        "delivery/zero-copy",
		PktsPerSec:  total / elapsed.Seconds(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / total,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / total,
	}, nil
}
