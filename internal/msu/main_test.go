package msu

import (
	"testing"

	"calliope/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running
// (a disk loop, delivery pump, or group feeder without a shutdown
// edge).
func TestMain(m *testing.M) { leakcheck.Main(m) }
