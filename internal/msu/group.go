package msu

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"calliope/internal/core"
	"calliope/internal/wire"
)

// group is a stream group (§2.2): the streams started together for one
// (possibly composite) content item, controlled by a single VCR
// connection so that commands start and stop all members
// simultaneously. All members live on this MSU — the Coordinator never
// splits a group across machines.
type group struct {
	m         *MSU
	id        uint64
	size      int
	clientTCP string

	mu      sync.Mutex
	members []*stream
	vcr     *wire.Peer
	eofSent bool
	quitted bool
}

func newGroup(m *MSU, id uint64, size int, clientTCP string) *group {
	if size < 1 {
		size = 1
	}
	return &group{m: m, id: id, size: size, clientTCP: clientTCP}
}

// addMember registers a stream; reports whether the group is complete.
// Callers hold m.mu (not g.mu).
func (g *group) addMember(s *stream) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members = append(g.members, s)
	return len(g.members) == g.size
}

// length reports the group's playback length: the longest member.
func (g *group) length() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	var max time.Duration
	for _, s := range g.members {
		if s.length > max {
			max = s.length
		}
	}
	return max
}

// clientDialAttempts bounds the control-connection retry loop: a
// client that is momentarily busy (or whose accept loop lost the race
// with our dial) gets a few chances before the group is abandoned.
const clientDialAttempts = 4

// connectClient opens the VCR control connection to the client, sends
// the hello, and starts every member — playback members begin
// delivering, recorders begin accepting. The dial is retried a few
// times with short backoff; one dropped SYN must not kill a stream
// group that the Coordinator already reserved resources for.
func (g *group) connectClient() error {
	var conn net.Conn
	var err error
	b := wire.Backoff{Base: 50 * time.Millisecond, Cap: time.Second}
	for {
		conn, err = g.m.cfg.Dial("tcp", g.clientTCP)
		if err == nil {
			break
		}
		g.mu.Lock()
		quitted := g.quitted
		g.mu.Unlock()
		if quitted || b.Attempts() >= clientDialAttempts-1 {
			return fmt.Errorf("dialing %s: %w", g.clientTCP, err)
		}
		t := time.NewTimer(b.Next())
		select {
		case <-g.m.quit:
			t.Stop()
			return fmt.Errorf("dialing %s: msu shutting down", g.clientTCP)
		case <-t.C:
		}
	}
	peer := wire.NewPeerStopped(conn, g.handleVCR, func(error) {
		// A dead client control connection terminates the group — the
		// Coordinator then reclaims the resources.
		g.quit("client control connection lost")
	})
	g.mu.Lock()
	g.vcr = peer
	members := append([]*stream(nil), g.members...)
	g.mu.Unlock()
	peer.Start()

	hello := wire.VCRHello{Group: g.id, Length: g.length()}
	for _, s := range members {
		hello.Streams = append(hello.Streams, wire.StreamInfo{
			Stream: s.spec.Stream, Content: s.spec.Content, Type: s.spec.Type,
		})
	}
	if err := peer.Notify(wire.TypeVCRHello, hello); err != nil {
		return err
	}
	for _, s := range members {
		if err := s.begin(); err != nil {
			return fmt.Errorf("starting stream %d: %w", s.spec.Stream, err)
		}
	}
	return nil
}

// handleVCR serves the client's VCR commands; every command applies to
// all members of the group.
func (g *group) handleVCR(msgType string, body json.RawMessage) (any, error) {
	if msgType != wire.TypeVCR {
		return nil, fmt.Errorf("%w: unexpected %q on VCR connection", core.ErrBadRequest, msgType)
	}
	var cmd wire.VCR
	if err := json.Unmarshal(body, &cmd); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
	}
	g.mu.Lock()
	if g.quitted {
		g.mu.Unlock()
		return nil, core.ErrStreamTerminated
	}
	members := append([]*stream(nil), g.members...)
	g.mu.Unlock()

	apply := func(f func(*stream) error) error {
		for _, s := range members {
			if err := f(s); err != nil {
				return err
			}
		}
		return nil
	}

	var err error
	switch cmd.Op {
	case "pause":
		err = apply(func(s *stream) error { return s.pause() })
	case "play":
		err = apply(func(s *stream) error { return s.resume() })
	case "seek":
		err = apply(func(s *stream) error { return s.seek(cmd.Pos) })
	case "fast-forward":
		err = apply(func(s *stream) error { return s.setSpeed(core.FastForward) })
	case "fast-backward":
		err = apply(func(s *stream) error { return s.setSpeed(core.FastBackward) })
	case "quit":
		// Ack first, then tear down; the connection dies with us.
		go g.quit("client quit")
		return &wire.VCRAck{Pos: members[0].position(), Speed: core.Normal.String()}, nil
	default:
		return nil, fmt.Errorf("%w: vcr op %q", core.ErrBadRequest, cmd.Op)
	}
	if err != nil {
		return nil, err
	}
	return &wire.VCRAck{Pos: members[0].position(), Speed: members[0].speedName()}, nil
}

// memberEOF records one member reaching end of content; when all have,
// the client is told (§2.1's play flow ends here, but resources stay
// allocated until quit so the client can seek back).
func (g *group) memberEOF(s *stream) {
	g.mu.Lock()
	if g.eofSent || g.quitted {
		g.mu.Unlock()
		return
	}
	allDone := true
	for _, m := range g.members {
		if !m.atEOF() {
			allDone = false
			break
		}
	}
	var vcr *wire.Peer
	var pos time.Duration
	if allDone {
		g.eofSent = true
		vcr = g.vcr
		pos = g.members[0].position()
	}
	g.mu.Unlock()
	if vcr != nil {
		vcr.Notify(wire.TypeStreamEOF, wire.StreamEOF{Group: g.id, Pos: pos}) //nolint:errcheck
	}
}

// clearEOF re-arms EOF notification after a seek or speed change.
func (g *group) clearEOF() {
	g.mu.Lock()
	g.eofSent = false
	g.mu.Unlock()
}

// quit terminates the whole group: recordings commit, players stop,
// the Coordinator hears stream-ended for every member (§2.2: "After a
// 'quit' command from the client, the MSU informs the coordinator that
// the stream has been terminated").
func (g *group) quit(cause string) {
	g.mu.Lock()
	if g.quitted {
		g.mu.Unlock()
		return
	}
	g.quitted = true
	members := append([]*stream(nil), g.members...)
	vcr := g.vcr
	g.mu.Unlock()

	for _, s := range members {
		s.finishRecording()
		s.teardown()
		g.m.notifyCoordinator(wire.TypeStreamEnded, wire.StreamEnded{Stream: s.spec.Stream, Cause: cause})
	}
	if vcr != nil {
		vcr.Close() //nolint:errcheck // teardown: the client is gone or leaving; nothing to report to
	}
	g.m.dropGroup(g)
	g.m.logf("group %d terminated: %s", g.id, cause)
}
