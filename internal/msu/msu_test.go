package msu

import (
	"strings"
	"testing"
	"time"

	"calliope/internal/blockdev"
	"calliope/internal/media"
	"calliope/internal/msufs"
	"calliope/internal/units"
)

func testVolume(t *testing.T) msufs.Store {
	t.Helper()
	dev, err := blockdev.NewMem(32 * int64(units.MB))
	if err != nil {
		t.Fatal(err)
	}
	vol, err := msufs.Format(dev, msufs.Options{BlockSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return msufs.NewStore(vol)
}

// rawVolume is testVolume without the store wrapper, for MSU configs.
func rawVolume(t *testing.T) *msufs.Volume {
	t.Helper()
	dev, err := blockdev.NewMem(32 * int64(units.MB))
	if err != nil {
		t.Fatal(err)
	}
	vol, err := msufs.Format(dev, msufs.Options{BlockSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return vol
}

func testStream(t *testing.T, dur time.Duration) []media.Packet {
	t.Helper()
	pkts, err := media.GenerateCBR(media.CBRConfig{
		Rate: 1500 * units.Kbps, PacketSize: 1024, FPS: 30, GOP: 15, Duration: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

func TestIngestReadBackRoundTrip(t *testing.T) {
	vol := testVolume(t)
	src := testStream(t, time.Second)
	if err := Ingest(vol, "movie", "mpeg1", src); err != nil {
		t.Fatal(err)
	}
	st, err := vol.Stat("movie")
	if err != nil {
		t.Fatal(err)
	}
	if st.Attrs[AttrType] != "mpeg1" {
		t.Errorf("type attr = %q", st.Attrs[AttrType])
	}
	if st.Attrs[AttrTree] == "" || st.Attrs[AttrLength] == "" {
		t.Error("tree/length attrs missing")
	}
	if !st.Committed {
		t.Error("ingested file not committed")
	}

	got, err := ReadBack(vol, "movie")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) {
		t.Fatalf("ReadBack %d packets, want %d", len(got), len(src))
	}
	for i := range got {
		if got[i].Time != src[i].Time || string(got[i].Payload) != string(src[i].Payload) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestIngestEmpty(t *testing.T) {
	vol := testVolume(t)
	if err := Ingest(vol, "x", "mpeg1", nil); err == nil {
		t.Fatal("empty ingest accepted")
	}
	if len(vol.List()) != 0 {
		t.Fatal("residue after failed ingest")
	}
}

func TestIngestDuplicate(t *testing.T) {
	vol := testVolume(t)
	src := testStream(t, 200*time.Millisecond)
	if err := Ingest(vol, "movie", "mpeg1", src); err != nil {
		t.Fatal(err)
	}
	if err := Ingest(vol, "movie", "mpeg1", src); err == nil {
		t.Fatal("duplicate ingest accepted")
	}
}

func TestIngestFastLinksCompanions(t *testing.T) {
	vol := testVolume(t)
	src := testStream(t, 2*time.Second) // 60 frames
	if err := Ingest(vol, "movie", "mpeg1", src); err != nil {
		t.Fatal(err)
	}
	if err := IngestFast(vol, "movie", "mpeg1", src, 15); err != nil {
		t.Fatal(err)
	}
	st, _ := vol.Stat("movie")
	if st.Attrs[AttrFastFwd] != "movie.ff" || st.Attrs[AttrFastBack] != "movie.fb" {
		t.Fatalf("links = %q %q", st.Attrs[AttrFastFwd], st.Attrs[AttrFastBack])
	}
	if st.Attrs[AttrEvery] != "15" {
		t.Fatalf("every = %q", st.Attrs[AttrEvery])
	}
	for _, name := range []string{"movie.ff", "movie.fb"} {
		cst, err := vol.Stat(name)
		if err != nil {
			t.Fatalf("companion %s: %v", name, err)
		}
		if cst.Attrs[AttrFastRole] == "" {
			t.Errorf("%s lacks fast-role attr", name)
		}
	}
	// Companion content is the filtered stream: 60/15 = 4 frames.
	ff, err := ReadBack(vol, "movie.ff")
	if err != nil {
		t.Fatal(err)
	}
	frames := map[uint32]bool{}
	for _, p := range ff {
		h, err := media.ParseHeader(p.Payload)
		if err != nil {
			t.Fatal(err)
		}
		frames[h.Frame] = true
	}
	if len(frames) != 4 {
		t.Fatalf("filtered frames = %d, want 4", len(frames))
	}
}

func TestIngestFastUnknownContent(t *testing.T) {
	vol := testVolume(t)
	src := testStream(t, time.Second)
	if err := IngestFast(vol, "ghost", "mpeg1", src, 15); err == nil {
		t.Fatal("fast companions for unknown content accepted")
	}
}

func TestReadBackMissing(t *testing.T) {
	vol := testVolume(t)
	if _, err := ReadBack(vol, "ghost"); err == nil {
		t.Fatal("ReadBack of missing content succeeded")
	}
	// Content without tree metadata is rejected.
	f, err := vol.Create("raw", 1024, map[string]string{AttrType: "mpeg1"})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteBlock(0, []byte("junk")) //nolint:errcheck
	if _, err := ReadBack(vol, "raw"); err == nil || !strings.Contains(err.Error(), "ibtree") {
		t.Fatalf("missing tree metadata: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	vol := rawVolume(t)
	cases := []Config{
		{Coordinator: "x", Volumes: []*msufs.Volume{vol}}, // no ID
		{ID: "m", Volumes: []*msufs.Volume{vol}},          // no coordinator
		{ID: "m", Coordinator: "x"},                       // no volumes
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	m, err := New(Config{ID: "m", Coordinator: "127.0.0.1:1", Volumes: []*msufs.Volume{vol}})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.Host == "" || m.cfg.Registry == nil || m.cfg.ReconnectInterval <= 0 {
		t.Error("defaults not applied")
	}
	// Start against a dead coordinator fails cleanly.
	if err := m.Start(); err == nil {
		t.Error("start against dead coordinator succeeded")
	}
}

func TestBuildHelloSkipsCompanions(t *testing.T) {
	rvol := rawVolume(t)
	vol := msufs.NewStore(rvol)
	src := testStream(t, time.Second)
	if err := Ingest(vol, "movie", "mpeg1", src); err != nil {
		t.Fatal(err)
	}
	if err := IngestFast(vol, "movie", "mpeg1", src, 15); err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{ID: "m", Coordinator: "127.0.0.1:1", Volumes: []*msufs.Volume{rvol}})
	if err != nil {
		t.Fatal(err)
	}
	hello, err := m.buildHello()
	if err != nil {
		t.Fatal(err)
	}
	if len(hello.Disks) != 1 {
		t.Fatalf("disks = %d", len(hello.Disks))
	}
	decls := hello.Disks[0].Contents
	if len(decls) != 1 || decls[0].Name != "movie" {
		t.Fatalf("content decls = %+v (companions must be hidden)", decls)
	}
	if !decls[0].HasFast {
		t.Error("HasFast not set")
	}
	if decls[0].Length <= 0 {
		t.Error("length missing")
	}
}
