package msu

import (
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"calliope/internal/core"
	"calliope/internal/ibtree"
	"calliope/internal/msufs"
	"calliope/internal/protocol"
	"calliope/internal/units"
	"calliope/internal/wire"
)

// recorder is the record path (§2.3): the network process fills
// buffers from the client's UDP packets, the protocol extension module
// derives each packet's delivery time (arrival time by default,
// protocol timestamp when available), control traffic is interleaved
// with the data, and everything lands in an IB-tree on disk.
type recorder struct {
	s    *stream
	file msufs.StoreFile
	ext  protocol.Extension

	dataConn *net.UDPConn
	ctrlConn *net.UDPConn

	mu       sync.Mutex
	builder  *ibtree.Builder
	started  bool
	epoch    time.Time
	lastTime time.Duration
	packets  int64
	stopped  bool

	wg sync.WaitGroup
}

// newRecordStream creates the content file, reserves the estimate, and
// opens the receive sockets.
func (m *MSU) newRecordStream(spec core.StreamSpec, vol msufs.Store) (*stream, *wire.StartStreamOK, error) {
	ext, err := m.cfg.Registry.New(spec.Protocol, protocol.Config{Rate: spec.Rate})
	if err != nil {
		return nil, nil, err
	}
	file, err := vol.Create(spec.Content, int64(spec.Reserved), map[string]string{
		AttrType: spec.Type,
	})
	if err != nil {
		return nil, nil, err
	}
	builder, err := ibtree.NewBuilder(file, vol.BlockSize(), 0)
	if err != nil {
		vol.Remove(spec.Content) //nolint:errcheck
		return nil, nil, err
	}

	s := &stream{m: m, spec: spec, vol: vol, speed: core.Normal}
	rec := &recorder{s: s, file: file, ext: ext, builder: builder}
	s.rec = rec

	fail := func(err error) (*stream, *wire.StartStreamOK, error) {
		if rec.dataConn != nil {
			rec.dataConn.Close()
		}
		if rec.ctrlConn != nil {
			rec.ctrlConn.Close()
		}
		vol.Remove(spec.Content) //nolint:errcheck
		return nil, nil, err
	}

	rec.dataConn, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(m.cfg.Host)})
	if err != nil {
		return fail(fmt.Errorf("msu: opening record data socket: %w", err))
	}
	resp := &wire.StartStreamOK{DataAddr: rec.dataConn.LocalAddr().String()}
	if ext.HasControlChannel() {
		rec.ctrlConn, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(m.cfg.Host)})
		if err != nil {
			return fail(fmt.Errorf("msu: opening record control socket: %w", err))
		}
		resp.CtrlAddr = rec.ctrlConn.LocalAddr().String()
	}

	rec.wg.Add(1)
	go rec.readLoop(rec.dataConn, protocol.Data)
	if rec.ctrlConn != nil {
		rec.wg.Add(1)
		go rec.readLoop(rec.ctrlConn, protocol.Control)
	}
	return s, resp, nil
}

// readLoop receives packets on one channel until stopped.
func (r *recorder) readLoop(conn *net.UDPConn, ch protocol.Channel) {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				r.mu.Lock()
				stopped := r.stopped
				r.mu.Unlock()
				if stopped {
					return
				}
				continue
			}
			return // socket closed
		}
		r.append(ch, buf[:n], time.Now())
	}
}

// append stores one received packet with its derived delivery time.
func (r *recorder) append(ch protocol.Channel, payload []byte, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	if !r.started {
		r.started = true
		r.epoch = now
	}
	arrival := now.Sub(r.epoch)
	var dt time.Duration
	if ch == protocol.Data {
		var err error
		dt, err = r.ext.DeliveryTime(payload, arrival)
		if err != nil {
			r.s.m.logf("stream %d: delivery time: %v (using arrival)", r.s.spec.Stream, err)
		}
	} else {
		// Control messages replay at their arrival offsets.
		dt = arrival
	}
	// The IB-tree needs non-decreasing keys; clamp reordered packets
	// to the current position.
	if dt < r.lastTime {
		dt = r.lastTime
	}
	r.lastTime = dt
	if err := r.builder.Append(ibtree.Packet{Time: dt, Payload: protocol.EncodeStored(ch, payload)}); err != nil {
		r.s.m.logf("stream %d: append: %v", r.s.spec.Stream, err)
		return
	}
	r.packets++
}

// stop halts the readers without committing (used on teardown after
// finish, or on abort).
func (r *recorder) stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	r.dataConn.Close()
	if r.ctrlConn != nil {
		r.ctrlConn.Close()
	}
	r.wg.Wait()
}

// finishRecording commits a recorder stream; a no-op for players.
// Empty recordings are deleted rather than committed.
func (s *stream) finishRecording() {
	if s.rec == nil {
		return
	}
	r := s.rec
	r.stop()
	r.mu.Lock()
	packets := r.packets
	builder := r.builder
	r.mu.Unlock()

	if packets == 0 {
		s.vol.Remove(s.spec.Content) //nolint:errcheck
		s.m.logf("stream %d: empty recording %q discarded", s.spec.Stream, s.spec.Content)
		return
	}
	meta, err := builder.Finalize()
	if err != nil {
		s.m.logf("stream %d: finalize: %v", s.spec.Stream, err)
		s.vol.Remove(s.spec.Content) //nolint:errcheck
		return
	}
	rawMeta, err := json.Marshal(meta)
	if err != nil {
		s.m.logf("stream %d: encoding metadata: %v", s.spec.Stream, err)
		return
	}
	if err := r.file.Commit(); err != nil {
		s.m.logf("stream %d: commit: %v", s.spec.Stream, err)
		return
	}
	for k, v := range map[string]string{
		AttrTree:   string(rawMeta),
		AttrLength: strconv.FormatInt(int64(meta.Length), 10),
	} {
		if err := s.vol.SetAttr(s.spec.Content, k, v); err != nil {
			s.m.logf("stream %d: attr %s: %v", s.spec.Stream, k, err)
			return
		}
	}
	s.m.notifyCoordinator(wire.TypeRecordingDone, wire.RecordingDone{
		Stream:  s.spec.Stream,
		Content: s.spec.Content,
		Type:    s.spec.Type,
		Disk:    s.spec.Disk,
		Length:  meta.Length,
		Size:    units.ByteSize(r.file.Size()),
	})
	s.m.logf("stream %d: recording %q committed (%d packets, %v)", s.spec.Stream, s.spec.Content, packets, meta.Length)
}
