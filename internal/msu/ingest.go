package msu

import (
	"encoding/json"
	"fmt"
	"strconv"

	"calliope/internal/ibtree"
	"calliope/internal/media"
	"calliope/internal/msufs"
	"calliope/internal/protocol"
)

// This file holds the offline administration path: loading synthetic
// or pre-filtered content directly into a volume before an MSU serves
// it. The paper's fast-forward/backward files are produced exactly
// this way — "an administrator has to produce the fast forward and
// fast backward versions of the content" (§2.3.1) — and an
// "administrative interface is used to load [them] into the server".

// Ingest writes a packet stream into vol as content named name with
// the given content type. Packets must be in delivery-time order.
func Ingest(vol msufs.Store, name, contentType string, pkts []media.Packet) error {
	if len(pkts) == 0 {
		return fmt.Errorf("msu: ingest %q: empty stream", name)
	}
	var bytes int64
	for _, p := range pkts {
		bytes += int64(len(p.Payload)) + 32
	}
	file, err := vol.Create(name, bytes, map[string]string{AttrType: contentType})
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		vol.Remove(name) //nolint:errcheck
		return err
	}
	builder, err := ibtree.NewBuilder(file, vol.BlockSize(), 0)
	if err != nil {
		return cleanup(err)
	}
	for i, p := range pkts {
		stored := protocol.EncodeStored(protocol.Data, p.Payload)
		if err := builder.Append(ibtree.Packet{Time: p.Time, Payload: stored}); err != nil {
			return cleanup(fmt.Errorf("msu: ingest %q packet %d: %w", name, i, err))
		}
	}
	meta, err := builder.Finalize()
	if err != nil {
		return cleanup(err)
	}
	rawMeta, err := json.Marshal(meta)
	if err != nil {
		return cleanup(err)
	}
	if err := file.Commit(); err != nil {
		return cleanup(err)
	}
	if err := vol.SetAttr(name, AttrTree, string(rawMeta)); err != nil {
		return cleanup(err)
	}
	if err := vol.SetAttr(name, AttrLength, strconv.FormatInt(int64(meta.Length), 10)); err != nil {
		return cleanup(err)
	}
	return nil
}

// IngestFast produces and loads the fast-forward and fast-backward
// companion files for already-ingested content packets, linking them
// to the normal-rate item so VCR speed switches find them.
func IngestFast(vol msufs.Store, name, contentType string, pkts []media.Packet, every int) error {
	if every <= 0 {
		every = media.DefaultFilterEvery
	}
	if _, err := vol.Stat(name); err != nil {
		return fmt.Errorf("msu: fast companions for unknown content %q: %w", name, err)
	}
	ff, err := media.FilterFast(pkts, every, false)
	if err != nil {
		return fmt.Errorf("msu: filtering %q forward: %w", name, err)
	}
	fb, err := media.FilterFast(pkts, every, true)
	if err != nil {
		return fmt.Errorf("msu: filtering %q backward: %w", name, err)
	}
	ffName, fbName := name+".ff", name+".fb"
	if err := Ingest(vol, ffName, contentType, ff); err != nil {
		return err
	}
	if err := Ingest(vol, fbName, contentType, fb); err != nil {
		vol.Remove(ffName) //nolint:errcheck
		return err
	}
	for _, link := range []struct{ k, v string }{
		{AttrFastFwd, ffName},
		{AttrFastBack, fbName},
		{AttrEvery, strconv.Itoa(every)},
	} {
		if err := vol.SetAttr(name, link.k, link.v); err != nil {
			return err
		}
	}
	for _, n := range []string{ffName, fbName} {
		if err := vol.SetAttr(n, AttrFastRole, "companion"); err != nil {
			return err
		}
	}
	return nil
}

// ReadBack scans ingested or recorded content into memory — the
// offline half of the fast-scan filter pipeline (read the recorded
// stream, filter, re-load) and a convenient test hook.
func ReadBack(vol msufs.Store, name string) ([]media.Packet, error) {
	file, err := vol.Open(name)
	if err != nil {
		return nil, err
	}
	tree, err := treeFromAttrs(file, vol.BlockSize())
	if err != nil {
		return nil, err
	}
	cur, err := tree.Begin()
	if err != nil {
		return nil, err
	}
	var out []media.Packet
	for {
		pkt, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if pkt == nil {
			return out, nil
		}
		ch, payload, err := protocol.DecodeStored(pkt.Payload)
		if err != nil {
			return nil, err
		}
		if ch != protocol.Data {
			continue // control traffic is not media
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		out = append(out, media.Packet{Time: pkt.Time, Payload: cp})
	}
}
