package msu

import (
	"calliope/internal/obs"
)

// msuMetrics holds the MSU's pre-registered instrument handles. It is
// a value field on MSU holding only pointers: a zero-value MSU (as
// BenchmarkPlayerDeliveryPath constructs) has nil handles, and every
// obs method is a no-op on nil — so the delivery hot path carries the
// instrumentation at zero cost when observability is off, and a single
// atomic update when on. Per DESIGN.md §3i the per-packet path must
// stay 0 allocs/op: only these pre-registered atomics, never a map
// lookup, interface or lock.
type msuMetrics struct {
	// reg is the MSU-local registry; reportCache ships its cumulative
	// snapshot to the Coordinator, which merges deltas cluster-wide.
	reg *obs.Registry

	packets  *obs.Counter   // delivery_packets_total
	bytes    *obs.Counter   // delivery_bytes_total
	lateness *obs.Histogram // delivery_lateness_seconds (send time vs pacing target)

	pagesRead *obs.Counter // disk_pages_read_total (IB-tree pages from disk)
	cacheHits *obs.Counter // cache_page_hits_total (pages served from RAM)

	streams     *obs.Counter // msu_streams_started_total
	eofs        *obs.Counter // delivery_eof_total
	transferOut *obs.Counter // transfer_bytes_out_total (replication copy-outs)
}

func newMSUMetrics(r *obs.Registry) msuMetrics {
	return msuMetrics{
		reg:         r,
		packets:     r.Counter("delivery_packets_total"),
		bytes:       r.Counter("delivery_bytes_total"),
		lateness:    r.Histogram("delivery_lateness_seconds", obs.DefaultLatencyBuckets),
		pagesRead:   r.Counter("disk_pages_read_total"),
		cacheHits:   r.Counter("cache_page_hits_total"),
		streams:     r.Counter("msu_streams_started_total"),
		eofs:        r.Counter("delivery_eof_total"),
		transferOut: r.Counter("transfer_bytes_out_total"),
	}
}
