// Package msu implements Calliope's Multimedia Storage Unit (§2.3).
//
// An MSU is the real-time component: it records and plays multimedia
// data, manages its disks through the user-level file system
// (internal/msufs) with IB-tree content files (internal/ibtree), and
// processes VCR commands arriving on a per-group TCP control
// connection it opens to the client. A central handler takes RPCs from
// the Coordinator; per-stream disk and network goroutines — the
// analogue of the paper's per-device processes — move data through a
// lock-free shared-memory queue (internal/queue) with double
// buffering. MSUs never talk to each other.
//
// On startup (and after any disconnection) the MSU registers with the
// Coordinator, reporting its disks, free space, and stored content;
// this is the recovery half of the paper's fault-tolerance story.
package msu

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"strconv"
	"sync"
	"time"

	"calliope/internal/cache"
	"calliope/internal/core"
	"calliope/internal/ibtree"
	"calliope/internal/iosched"
	"calliope/internal/msufs"
	"calliope/internal/obs"
	"calliope/internal/protocol"
	"calliope/internal/queue"
	"calliope/internal/trace"
	"calliope/internal/units"
	"calliope/internal/wire"
)

// Attribute keys on content files.
const (
	AttrType     = "content-type"
	AttrTree     = "ibtree"
	AttrLength   = "length"
	AttrFastFwd  = "fastfwd"
	AttrFastBack = "fastback"
	AttrFastRole = "fast-role"
	AttrEvery    = "fast-every"
)

// Config configures an MSU.
type Config struct {
	ID          core.MSUID
	Coordinator string // Coordinator TCP address
	// Host is the IP the MSU's UDP sockets bind/advertise on.
	Host string
	// Volumes are the MSU's disks, one volume per disk, already
	// formatted or mounted.
	Volumes []*msufs.Volume
	// Striped lays content across all volumes round-robin (§2.3.3's
	// alternative layout): the MSU then advertises one logical disk
	// whose capacity and bandwidth are the sum of its members.
	Striped bool
	// Registry supplies protocol extension modules; nil selects
	// protocol.Default.
	Registry *protocol.Registry
	// DiskBandwidth is the per-disk delivery budget advertised to the
	// Coordinator. Zero lets the Coordinator pick its default.
	DiskBandwidth units.BitRate
	// NetBandwidth is the MSU's NIC delivery budget advertised to the
	// Coordinator. Zero lets the Coordinator default it to the sum of
	// the disk budgets; raise it to let RAM-cached streams multiply
	// capacity past what the disks alone could serve.
	NetBandwidth units.BitRate
	// CacheBytes sizes each logical disk's RAM interval cache (§2.3's
	// buffer memory, spent on whole IB-tree pages shared across
	// streams). Zero selects DefaultCacheBytes; negative disables
	// caching.
	CacheBytes units.ByteSize
	// DirectIO bypasses the per-volume I/O schedulers: every player
	// issues its own blocking ReadBlock, the pre-scheduler behavior.
	// Kept as the ablation baseline BenchmarkIOSched measures against.
	DirectIO bool
	// IODepth bounds in-flight transfers per physical volume in the
	// I/O scheduler. 0 or 1 is the paper's one-I/O-per-disk invariant
	// (§2.2.1); raise it for devices with useful internal queueing.
	IODepth int
	// ReconnectInterval is the base of the re-registration backoff
	// after the Coordinator connection drops (attempts space out
	// exponentially with jitter, capped at BackoffCap).
	ReconnectInterval time.Duration
	// BackoffCap bounds the re-registration backoff; zero means the
	// wire default.
	BackoffCap time.Duration
	// Dial supplies the TCP dialer for both the Coordinator connection
	// and per-group client control connections; nil means a net.Dial
	// with a 5 s timeout. Fault-injection tests pass an injector here
	// (internal/faultinject).
	Dial func(network, address string) (net.Conn, error)
	// Listen supplies the TCP listener for the MSU-to-MSU replication
	// transfer port (internal/replicate); nil means net.Listen.
	// Fault-injection tests wrap it so crashing an MSU severs its
	// in-flight copy-outs too.
	Listen func(network, address string) (net.Listener, error)
	// Logger receives operational messages; nil disables logging.
	Logger *log.Logger
}

// DefaultCacheBytes is the per-disk RAM cache size when Config leaves
// CacheBytes zero: room for a few dozen 256 KB pages, enough that
// concurrent viewers of one title ride each other's reads.
const DefaultCacheBytes units.ByteSize = 8 << 20

// MSU is the storage-unit server.
type MSU struct {
	cfg Config
	// stores are the logical disks: one per volume, or a single
	// striped store over all volumes.
	stores []msufs.Store
	// caches are the per-store RAM interval caches, indexed like
	// stores; entries are nil when caching is disabled or the budget
	// is below one page.
	caches []*cache.Cache
	// scheds holds one I/O scheduler per physical volume (nil map when
	// Config.DirectIO): every player's page read on that volume flows
	// through its scheduler, so the per-disk C-SCAN rounds see the
	// whole MSU's demand. Built once in New, immutable after.
	scheds map[*msufs.Volume]*iosched.Scheduler
	// storeVols lists the member volumes behind each logical disk,
	// indexed like stores, for per-disk scheduler stat aggregation.
	storeVols [][]*msufs.Volume
	// obs holds the MSU's metrics handles (obs.go); zero-valued (all
	// nil, every update a no-op) on an MSU not built by New.
	obs msuMetrics

	mu      sync.Mutex
	peer    *wire.Peer
	streams map[core.StreamID]*stream
	groups  map[uint64]*group
	// transferLn accepts MSU-to-MSU replication transfers; its address
	// travels in MSUHello. transferConns tracks live copy-out
	// connections so Close can sever them; repl tracks inbound copy
	// jobs by Coordinator-assigned transfer id.
	transferLn    net.Listener
	transferConns map[net.Conn]struct{}
	repl          map[uint64]*replJob
	closed        bool
	// quit interrupts reconnect backoff sleeps on Close.
	quit chan struct{}

	wg sync.WaitGroup
}

// New builds an MSU.
func New(cfg Config) (*MSU, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("msu: config needs an ID")
	}
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("msu: config needs a Coordinator address")
	}
	if len(cfg.Volumes) == 0 {
		return nil, fmt.Errorf("msu: config needs at least one volume")
	}
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	if cfg.Registry == nil {
		cfg.Registry = protocol.Default
	}
	if cfg.ReconnectInterval <= 0 {
		cfg.ReconnectInterval = 500 * time.Millisecond
	}
	if cfg.Dial == nil {
		cfg.Dial = func(network, address string) (net.Conn, error) {
			return net.DialTimeout(network, address, 5*time.Second)
		}
	}
	var stores []msufs.Store
	var storeVols [][]*msufs.Volume
	if cfg.Striped && len(cfg.Volumes) > 1 {
		set, err := msufs.NewStripeSet(cfg.Volumes...)
		if err != nil {
			return nil, err
		}
		stores = []msufs.Store{msufs.NewStripedStore(set)}
		storeVols = [][]*msufs.Volume{cfg.Volumes}
	} else {
		for _, v := range cfg.Volumes {
			stores = append(stores, msufs.NewStore(v))
			storeVols = append(storeVols, []*msufs.Volume{v})
		}
	}
	m := &MSU{
		cfg:       cfg,
		stores:    stores,
		storeVols: storeVols,
		caches:    buildCaches(cfg.CacheBytes, stores),
		streams:   make(map[core.StreamID]*stream),
		groups:    make(map[uint64]*group),
		quit:      make(chan struct{}),
	}
	m.obs = newMSUMetrics(obs.New(obs.Options{Now: time.Now}))
	if !cfg.DirectIO {
		m.scheds = make(map[*msufs.Volume]*iosched.Scheduler, len(cfg.Volumes))
		for _, v := range cfg.Volumes {
			m.scheds[v] = iosched.New(v.Device(), iosched.Options{Depth: cfg.IODepth, Now: time.Now})
		}
	}
	return m, nil
}

// buildCaches sizes one RAM interval cache per logical disk. The page
// size is the store's block size, so cached pages alias directly into
// the zero-copy delivery path.
func buildCaches(budget units.ByteSize, stores []msufs.Store) []*cache.Cache {
	caches := make([]*cache.Cache, len(stores))
	if budget < 0 {
		return caches
	}
	if budget == 0 {
		budget = DefaultCacheBytes
	}
	for i, store := range stores {
		pages := int(int64(budget) / int64(store.BlockSize()))
		if pages < 1 {
			continue
		}
		pool, err := queue.NewPagePool(store.BlockSize(), pages)
		if err != nil {
			continue // impossible: both dimensions are positive
		}
		caches[i] = cache.New(pool)
	}
	return caches
}

// cacheFor returns the RAM cache for one logical disk, or nil when
// caching is off.
func (m *MSU) cacheFor(disk int) *cache.Cache {
	if disk < 0 || disk >= len(m.caches) {
		return nil
	}
	return m.caches[disk]
}

// schedFor returns the I/O scheduler owning a physical volume, or nil
// when DirectIO is on. scheds is immutable after New, so no lock.
func (m *MSU) schedFor(v *msufs.Volume) *iosched.Scheduler {
	return m.scheds[v]
}

// ioStats aggregates scheduler counters across one logical disk's
// member volumes.
func (m *MSU) ioStats(disk int) trace.IOSchedStats {
	var total trace.IOSchedStats
	if m.scheds == nil || disk < 0 || disk >= len(m.storeVols) {
		return total
	}
	for _, v := range m.storeVols[disk] {
		if s := m.scheds[v]; s != nil {
			total = total.Add(s.Stats())
		}
	}
	return total
}

// reportCache advertises one disk's cache heat and I/O-scheduler
// counters to the Coordinator, which re-evaluates queued admissions on
// every report. Sent when heat changes: a player reaches EOF or stops.
func (m *MSU) reportCache(disk int) {
	c := m.cacheFor(disk)
	io := m.ioStats(disk)
	if c == nil && io.Requests == 0 {
		return
	}
	report := wire.CacheReport{Disk: disk, IO: io}
	if m.obs.reg != nil {
		// Piggyback the MSU's cumulative metrics snapshot; the
		// Coordinator diffs it against the last one it merged.
		snap := m.obs.reg.Snapshot()
		report.Obs = &snap
	}
	if c != nil {
		report.Stats = c.Stats()
		for _, cov := range c.Coverage() {
			report.Coverage = append(report.Coverage, wire.ContentCoverage{
				Name:        cov.Name,
				CachedPages: cov.CachedPages,
				TotalPages:  cov.TotalPages,
				Players:     cov.Players,
			})
		}
	}
	m.notifyCoordinator(wire.TypeCacheReport, report)
}

// Start connects to the Coordinator and begins serving. It keeps
// reconnecting until Close.
func (m *MSU) Start() error {
	// The replication transfer port opens before registration so the
	// hello can advertise its address.
	if err := m.startTransferListener(); err != nil {
		return err
	}
	// First registration is synchronous so callers know the MSU is
	// live; later reconnections happen in the background.
	if err := m.connectOnce(); err != nil {
		// A failed Start leaves nothing running: take the transfer
		// listener back down and reap its accept loop.
		m.mu.Lock()
		ln := m.transferLn
		m.transferLn = nil
		m.mu.Unlock()
		if ln != nil {
			ln.Close() //nolint:errcheck // already failing
		}
		m.wg.Wait()
		return err
	}
	return nil
}

// Close stops the MSU and all its streams.
func (m *MSU) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.quit)
	peer := m.peer
	ln := m.transferLn
	conns := make([]net.Conn, 0, len(m.transferConns))
	for c := range m.transferConns {
		conns = append(conns, c)
	}
	groups := make([]*group, 0, len(m.groups))
	for _, g := range m.groups {
		groups = append(groups, g)
	}
	m.mu.Unlock()
	if ln != nil {
		ln.Close() //nolint:errcheck // stops the accept loop
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck // severs in-flight copy-outs
	}
	m.abortAllReplications()
	for _, g := range groups {
		g.quit("msu shutdown")
	}
	var err error
	if peer != nil {
		err = peer.Close()
	}
	m.wg.Wait()
	// Schedulers close after every player has drained: a scheduler
	// completes its pending requests with ErrClosed, so any straggler
	// fetch unblocks rather than hanging.
	for _, s := range m.scheds {
		s.Close() //nolint:errcheck // Close never fails
	}
	return err
}

func (m *MSU) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf("msu %s: "+format, append([]any{m.cfg.ID}, args...)...)
	}
}

// connectOnce dials and registers with the Coordinator.
func (m *MSU) connectOnce() error {
	conn, err := m.cfg.Dial("tcp", m.cfg.Coordinator)
	if err != nil {
		return fmt.Errorf("msu: dialing coordinator: %w", err)
	}
	peer := wire.NewPeer(conn, m.handle, func(error) { m.reconnect() })
	hello, err := m.buildHello()
	if err != nil {
		peer.Close() //nolint:errcheck // best-effort cleanup; the hello error is what matters
		return err
	}
	if err := peer.Call(wire.TypeMSUHello, hello, &wire.MSUWelcome{}); err != nil {
		peer.Close() //nolint:errcheck // best-effort cleanup; the registration error is what matters
		return fmt.Errorf("msu: registering: %w", err)
	}
	m.mu.Lock()
	m.peer = peer
	m.mu.Unlock()
	m.logf("registered with coordinator at %s", m.cfg.Coordinator)
	return nil
}

// reconnect re-registers after the Coordinator connection drops —
// "When the MSU becomes available again, it contacts the Coordinator
// and is restored to the scheduling database" (§2.2). Attempts back
// off exponentially with jitter so a flapping Coordinator is not
// hammered by its whole MSU fleet at once.
func (m *MSU) reconnect() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.peer = nil
	m.wg.Add(1) // under mu: Close sets closed before waiting
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		b := wire.Backoff{Base: m.cfg.ReconnectInterval, Cap: m.cfg.BackoffCap}
		for {
			t := time.NewTimer(b.Next())
			select {
			case <-m.quit:
				t.Stop()
				return
			case <-t.C:
			}
			if err := m.connectOnce(); err == nil {
				return
			}
		}
	}()
}

// buildHello assembles the registration message from the volumes.
func (m *MSU) buildHello() (*wire.MSUHello, error) {
	hello := &wire.MSUHello{ID: m.cfg.ID, NetBandwidth: m.cfg.NetBandwidth, ProtoVersion: wire.ProtoVersion}
	m.mu.Lock()
	if m.transferLn != nil {
		hello.TransferAddr = m.transferLn.Addr().String()
	}
	m.mu.Unlock()
	for _, store := range m.stores {
		di := wire.DiskInfo{
			BlockSize:   store.BlockSize(),
			TotalBlocks: store.TotalBlocks(),
			FreeBlocks:  store.FreeBlocks(),
			// A striped logical disk aggregates its members' delivery
			// bandwidth.
			Bandwidth: m.cfg.DiskBandwidth * units.BitRate(store.Width()),
		}
		for _, fi := range store.List() {
			typ := fi.Attrs[AttrType]
			if typ == "" || fi.Attrs[AttrFastRole] != "" {
				continue // not content, or a fast-scan companion
			}
			length, _ := strconv.ParseInt(fi.Attrs[AttrLength], 10, 64)
			di.Contents = append(di.Contents, wire.ContentDecl{
				Name:    fi.Name,
				Type:    typ,
				Length:  time.Duration(length),
				Size:    units.ByteSize(fi.Size),
				HasFast: fi.Attrs[AttrFastFwd] != "" || fi.Attrs[AttrFastBack] != "",
			})
		}
		hello.Disks = append(hello.Disks, di)
	}
	return hello, nil
}

// notifyCoordinator sends a notification, tolerating a down link (the
// reconnect path re-registers state).
func (m *MSU) notifyCoordinator(msgType string, v any) {
	m.mu.Lock()
	peer := m.peer
	m.mu.Unlock()
	if peer == nil {
		return
	}
	peer.Notify(msgType, v) //nolint:errcheck // link loss handled by reconnect
}

// handle serves Coordinator RPCs.
func (m *MSU) handle(msgType string, body json.RawMessage) (any, error) {
	switch msgType {
	case wire.TypeStartStream:
		var req wire.StartStream
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
		}
		return m.startStream(req.Spec)
	case wire.TypeStopStream:
		var req wire.StopStream
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
		}
		m.stopStream(req.Stream, "coordinator stop")
		return nil, nil
	case wire.TypeDeleteContent:
		var req wire.DeleteContent
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
		}
		return nil, m.deleteContent(req.Content)
	case wire.TypeReplicate:
		var req wire.Replicate
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
		}
		return nil, m.handleReplicate(req)
	case wire.TypeReplicateAbort:
		var req wire.ReplicateAbort
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
		}
		m.abortReplication(req.ID)
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: unknown message %q", core.ErrBadRequest, msgType)
	}
}

// deleteContent removes an item and its fast-scan companions.
func (m *MSU) deleteContent(name string) error {
	m.mu.Lock()
	for _, s := range m.streams {
		if s.spec.Content == name {
			m.mu.Unlock()
			return fmt.Errorf("%w: %q", core.ErrContentInUse, name)
		}
	}
	m.mu.Unlock()
	for disk, store := range m.stores {
		st, err := store.Stat(name)
		if err != nil {
			continue
		}
		for _, companion := range []string{st.Attrs[AttrFastFwd], st.Attrs[AttrFastBack]} {
			if companion != "" {
				store.Remove(companion) //nolint:errcheck // best effort
				if c := m.cacheFor(disk); c != nil {
					c.Drop(companion)
				}
			}
		}
		if c := m.cacheFor(disk); c != nil {
			c.Drop(name)
		}
		return store.Remove(name)
	}
	return fmt.Errorf("%w: %q", core.ErrNoSuchContent, name)
}

// startStream admits one stream (play or record) and attaches it to
// its group.
func (m *MSU) startStream(spec core.StreamSpec) (*wire.StartStreamOK, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Disk >= len(m.stores) {
		return nil, fmt.Errorf("%w: disk %d of %d", core.ErrBadRequest, spec.Disk, len(m.stores))
	}
	vol := m.stores[spec.Disk]

	var s *stream
	var resp *wire.StartStreamOK
	var err error
	if spec.Record {
		s, resp, err = m.newRecordStream(spec, vol)
	} else {
		s, err = m.newPlayStream(spec, vol)
		resp = &wire.StartStreamOK{}
	}
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		s.teardown()
		return nil, core.ErrSessionClosed
	}
	if _, dup := m.streams[spec.Stream]; dup {
		m.mu.Unlock()
		s.teardown()
		return nil, fmt.Errorf("%w: stream %d", core.ErrDuplicateName, spec.Stream)
	}
	g := m.groups[spec.Group]
	if g == nil {
		g = newGroup(m, spec.Group, spec.GroupSize, spec.ClientTCP)
		m.groups[spec.Group] = g
	}
	m.streams[spec.Stream] = s
	s.group = g
	complete := g.addMember(s)
	m.mu.Unlock()

	if complete {
		if err := g.connectClient(); err != nil {
			m.logf("group %d: client control connection failed: %v", spec.Group, err)
			g.quit("client unreachable")
			return nil, fmt.Errorf("msu: connecting client control: %w", err)
		}
	}
	m.obs.streams.Inc()
	m.logf("stream %d (%s %q) started", spec.Stream, map[bool]string{true: "record", false: "play"}[spec.Record], spec.Content)
	return resp, nil
}

// stopStream force-terminates one stream's whole group.
func (m *MSU) stopStream(id core.StreamID, cause string) {
	m.mu.Lock()
	s := m.streams[id]
	m.mu.Unlock()
	if s == nil || s.group == nil {
		return
	}
	s.group.quit(cause)
}

// dropGroup forgets a finished group and its members.
func (m *MSU) dropGroup(g *group) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range g.members {
		delete(m.streams, s.spec.Stream)
	}
	delete(m.groups, g.id)
}

// treeFromAttrs opens the IB-tree described by a file's attributes.
func treeFromAttrs(file msufs.StoreFile, blockSize int) (*ibtree.Tree, error) {
	raw, ok := file.Attrs()[AttrTree]
	if !ok {
		return nil, fmt.Errorf("msu: %q has no ibtree metadata", file.Name())
	}
	var meta ibtree.Meta
	if err := json.Unmarshal([]byte(raw), &meta); err != nil {
		return nil, fmt.Errorf("msu: %q ibtree metadata: %w", file.Name(), err)
	}
	return ibtree.Open(file, blockSize, meta)
}
