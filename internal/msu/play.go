package msu

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"calliope/internal/core"
	"calliope/internal/ibtree"
	"calliope/internal/media"
	"calliope/internal/msufs"
	"calliope/internal/protocol"
	"calliope/internal/queue"
)

// stream is one active play or record stream on the MSU.
type stream struct {
	m     *MSU
	spec  core.StreamSpec
	vol   msufs.Store
	group *group

	// Playback state.
	tree     *ibtree.Tree
	length   time.Duration
	every    int // fast-scan filter interval
	ffName   string
	fbName   string
	dataConn *net.UDPConn
	ctrlConn *net.UDPConn

	mu     sync.Mutex
	speed  core.Speed
	pos    time.Duration // position in normal-rate coordinates
	player *player
	eof    bool

	// Recording state.
	rec *recorder
}

// newPlayStream opens content and the client-facing sockets; delivery
// starts when the group's control connection is up (begin).
func (m *MSU) newPlayStream(spec core.StreamSpec, vol msufs.Store) (*stream, error) {
	file, err := vol.Open(spec.Content)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", core.ErrNoSuchContent, spec.Content)
	}
	tree, err := treeFromAttrs(file, vol.BlockSize())
	if err != nil {
		return nil, err
	}
	attrs := file.Attrs()
	length := tree.Length()
	if raw, ok := attrs[AttrLength]; ok {
		if ns, err := strconv.ParseInt(raw, 10, 64); err == nil {
			length = time.Duration(ns)
		}
	}
	every := media.DefaultFilterEvery
	if raw, ok := attrs[AttrEvery]; ok {
		if n, err := strconv.Atoi(raw); err == nil && n > 0 {
			every = n
		}
	}
	s := &stream{
		m:      m,
		spec:   spec,
		vol:    vol,
		tree:   tree,
		length: length,
		every:  every,
		ffName: attrs[AttrFastFwd],
		fbName: attrs[AttrFastBack],
		speed:  core.Normal,
	}
	dest, err := net.ResolveUDPAddr("udp", spec.DestAddr)
	if err != nil {
		return nil, fmt.Errorf("%w: data address %q: %v", core.ErrBadRequest, spec.DestAddr, err)
	}
	s.dataConn, err = net.DialUDP("udp", nil, dest)
	if err != nil {
		return nil, fmt.Errorf("msu: opening data socket: %w", err)
	}
	if spec.CtrlAddr != "" {
		caddr, err := net.ResolveUDPAddr("udp", spec.CtrlAddr)
		if err != nil {
			s.dataConn.Close()
			return nil, fmt.Errorf("%w: control address %q: %v", core.ErrBadRequest, spec.CtrlAddr, err)
		}
		s.ctrlConn, err = net.DialUDP("udp", nil, caddr)
		if err != nil {
			s.dataConn.Close()
			return nil, fmt.Errorf("msu: opening control socket: %w", err)
		}
	}
	return s, nil
}

// begin starts delivery (or recording) once the group is connected.
func (s *stream) begin() error {
	if s.spec.Record {
		return nil // recorders run as soon as packets arrive
	}
	return s.playAt(core.Normal, 0)
}

// teardown stops all activity and closes sockets.
func (s *stream) teardown() {
	s.stopPlayer()
	if s.rec != nil {
		s.rec.stop()
	}
	if s.dataConn != nil {
		s.dataConn.Close()
	}
	if s.ctrlConn != nil {
		s.ctrlConn.Close()
	}
}

// position reports the stream's normal-rate position.
func (s *stream) position() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

func (s *stream) speedName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.speed.String()
}

func (s *stream) atEOF() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eof
}

// stopPlayer cancels the current delivery goroutines and waits for
// them to drain.
func (s *stream) stopPlayer() {
	s.mu.Lock()
	p := s.player
	s.player = nil
	s.mu.Unlock()
	if p != nil {
		p.stop()
	}
}

// pause halts delivery, keeping the position (§2.1 VCR).
func (s *stream) pause() error {
	if s.spec.Record {
		return fmt.Errorf("%w: cannot pause a recording", core.ErrBadRequest)
	}
	s.stopPlayer()
	return nil
}

// resume restarts normal-rate delivery from the current position.
func (s *stream) resume() error {
	if s.spec.Record {
		return fmt.Errorf("%w: cannot resume a recording", core.ErrBadRequest)
	}
	s.stopPlayer()
	s.mu.Lock()
	pos := s.pos
	s.mu.Unlock()
	if s.group != nil {
		s.group.clearEOF()
	}
	return s.playAt(core.Normal, pos)
}

// seek repositions the stream, staying at the current speed.
func (s *stream) seek(pos time.Duration) error {
	if s.spec.Record {
		return fmt.Errorf("%w: cannot seek a recording", core.ErrBadRequest)
	}
	if pos < 0 {
		pos = 0
	}
	if pos > s.length {
		pos = s.length
	}
	s.stopPlayer()
	s.mu.Lock()
	speed := s.speed
	s.pos = pos
	s.mu.Unlock()
	if s.group != nil {
		s.group.clearEOF()
	}
	return s.playAt(speed, pos)
}

// setSpeed switches to the fast-forward or fast-backward companion
// file at the position corresponding to the current frame (§2.3.1).
func (s *stream) setSpeed(sp core.Speed) error {
	if s.spec.Record {
		return fmt.Errorf("%w: cannot scan a recording", core.ErrBadRequest)
	}
	s.stopPlayer()
	s.mu.Lock()
	pos := s.pos
	s.mu.Unlock()
	if s.group != nil {
		s.group.clearEOF()
	}
	return s.playAt(sp, pos)
}

// fastTree lazily opens a fast-scan companion file.
func (s *stream) fastTree(name string) (*ibtree.Tree, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: %q", core.ErrNoFastFile, s.spec.Content)
	}
	file, err := s.vol.Open(name)
	if err != nil {
		return nil, fmt.Errorf("%w: companion %q: %v", core.ErrNoFastFile, name, err)
	}
	return treeFromAttrs(file, s.vol.BlockSize())
}

// playAt launches delivery at the given speed from the given
// normal-rate position.
func (s *stream) playAt(sp core.Speed, normalPos time.Duration) error {
	var tree *ibtree.Tree
	var treePos time.Duration
	switch sp {
	case core.Normal:
		tree = s.tree
		treePos = normalPos
	case core.FastForward:
		t, err := s.fastTree(s.ffName)
		if err != nil {
			return err
		}
		tree = t
		treePos = media.MapPosition(normalPos, s.every, true)
	case core.FastBackward:
		t, err := s.fastTree(s.fbName)
		if err != nil {
			return err
		}
		tree = t
		treePos = media.MapPositionBackward(normalPos, s.length, s.every)
	default:
		return fmt.Errorf("%w: speed %v", core.ErrBadRequest, sp)
	}
	p := &player{
		s:        s,
		tree:     tree,
		speed:    sp,
		startPos: treePos,
		cancel:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.mu.Lock()
	s.speed = sp
	s.pos = normalPos
	s.eof = false
	s.player = p
	s.mu.Unlock()
	p.start()
	return nil
}

// updatePos converts a tree-file delivery time to a normal-rate
// position and stores it.
func (s *stream) updatePos(sp core.Speed, treeTime time.Duration) {
	var pos time.Duration
	switch sp {
	case core.FastForward:
		pos = media.MapPosition(treeTime, s.every, false)
	case core.FastBackward:
		pos = s.length - treeTime*time.Duration(s.every)
		if pos < 0 {
			pos = 0
		}
	default:
		pos = treeTime
	}
	s.mu.Lock()
	s.pos = pos
	s.mu.Unlock()
}

// playerEOF marks end-of-content.
func (s *stream) playerEOF(p *player) {
	s.mu.Lock()
	if s.player != p {
		s.mu.Unlock()
		return // superseded by a VCR command
	}
	s.eof = true
	if p.speed == core.FastForward {
		s.pos = s.length
	} else if p.speed == core.FastBackward {
		s.pos = 0
	}
	s.mu.Unlock()
	if s.group != nil {
		s.group.memberEOF(s)
	}
}

// qItem flows through the shared-memory queue from the disk goroutine
// to the network goroutine.
type qItem struct {
	t       time.Duration
	ch      protocol.Channel
	payload []byte
	eof     bool
}

// player runs one delivery session: a disk goroutine feeding a
// lock-free SPSC queue (the paper's shared-memory queue, §2.3) and a
// network goroutine pacing packets onto the UDP sockets. Packet
// buffers recycle through a pool, so the steady-state data path does
// not allocate — the paper's MSU "does its own memory management".
type player struct {
	s        *stream
	tree     *ibtree.Tree
	speed    core.Speed
	startPos time.Duration
	cancel   chan struct{}
	done     chan struct{}
	pool     *queue.BufferPool
}

// queueDepth is the SPSC capacity between the disk and network sides.
const queueDepth = 512

// poolBufSize covers any stored packet (64 KB is the UDP maximum).
const poolBufSize = 64 * 1024

func (p *player) stop() {
	close(p.cancel)
	<-p.done
}

func (p *player) start() {
	pool, err := queue.NewBufferPool(poolBufSize, queueDepth/4)
	if err != nil { // impossible with the constants above
		panic(err)
	}
	p.pool = pool
	q := queue.NewSPSC[qItem](queueDepth)
	diskDone := make(chan struct{})
	go p.diskLoop(q, diskDone)
	go p.netLoop(q, diskDone)
}

// diskLoop is the disk process: it reads packets in delivery order and
// keeps the queue full (read-ahead / double buffering).
func (p *player) diskLoop(q *queue.SPSC[qItem], diskDone chan struct{}) {
	defer close(diskDone)
	enqueue := func(it qItem) bool {
		for {
			if q.Enqueue(it) {
				return true
			}
			select {
			case <-p.cancel:
				return false
			case <-time.After(time.Millisecond):
			}
		}
	}
	cur, err := p.tree.SeekTime(p.startPos)
	if err != nil {
		p.s.m.logf("stream %d: seek: %v", p.s.spec.Stream, err)
		enqueue(qItem{eof: true}) // t=0: error EOF is reported immediately
		return
	}
	// lastT/gap place the EOF marker on the delivery timeline one
	// packet interval after the final packet, so the network goroutine
	// paces the EOF notification like any other item instead of racing
	// it against the last datagram's delivery.
	var lastT, gap time.Duration
	for {
		select {
		case <-p.cancel:
			return
		default:
		}
		pkt, err := cur.Next()
		if err != nil {
			p.s.m.logf("stream %d: read: %v", p.s.spec.Stream, err)
			enqueue(qItem{eof: true}) // t=0: error EOF is reported immediately
			return
		}
		if pkt == nil {
			slack := gap
			if slack <= 0 {
				slack = 2 * time.Millisecond
			}
			enqueue(qItem{t: lastT + slack, eof: true})
			return
		}
		ch, payload, err := protocol.DecodeStored(pkt.Payload)
		if err != nil {
			// Content predating the channel framing: treat as data.
			ch, payload = protocol.Data, pkt.Payload
		}
		buf := p.pool.Get()
		if len(payload) > len(buf) {
			buf = make([]byte, len(payload))
		}
		n := copy(buf, payload)
		if !enqueue(qItem{t: pkt.Time, ch: ch, payload: buf[:n]}) {
			return
		}
		if d := pkt.Time - lastT; d > 0 {
			gap = d
		}
		lastT = pkt.Time
	}
}

// netLoop is the network process: it dequeues packets and sends each
// at its scheduled time relative to the session start.
func (p *player) netLoop(q *queue.SPSC[qItem], diskDone chan struct{}) {
	defer close(p.done)
	epoch := time.Now()
	for {
		it, ok := q.Dequeue()
		if !ok {
			select {
			case <-p.cancel:
				return
			case <-time.After(200 * time.Microsecond):
				continue
			}
		}
		// Pace first — EOF items carry a timestamp just past the final
		// packet, so end-of-stream is announced on the delivery
		// timeline, never before the last datagram has been sent.
		target := epoch.Add(it.t - p.startPos)
		if d := time.Until(target); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-p.cancel:
				t.Stop()
				return
			case <-t.C:
			}
		}
		if it.eof {
			p.s.playerEOF(p)
			// Stay parked until cancelled so stop() never blocks.
			<-p.cancel
			return
		}
		conn := p.s.dataConn
		if it.ch == protocol.Control && p.s.ctrlConn != nil {
			conn = p.s.ctrlConn
		}
		if _, err := conn.Write(it.payload); err != nil {
			select {
			case <-p.cancel: // socket closed by teardown
				return
			default:
			}
			p.s.m.logf("stream %d: send: %v", p.s.spec.Stream, err)
		}
		p.pool.Put(it.payload)
		p.s.updatePos(p.speed, it.t)
	}
}
