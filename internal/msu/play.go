package msu

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"calliope/internal/cache"
	"calliope/internal/core"
	"calliope/internal/ibtree"
	"calliope/internal/media"
	"calliope/internal/msufs"
	"calliope/internal/protocol"
	"calliope/internal/queue"
)

// stream is one active play or record stream on the MSU.
type stream struct {
	m     *MSU
	spec  core.StreamSpec
	vol   msufs.Store
	group *group

	// Playback state.
	tree *ibtree.Tree
	// file is the content's store file, kept alongside tree so page
	// reads can be located on a physical volume and submitted to its
	// I/O scheduler.
	file     msufs.StoreFile
	length   time.Duration
	every    int // fast-scan filter interval
	ffName   string
	fbName   string
	dataConn *net.UDPConn
	ctrlConn *net.UDPConn

	mu     sync.Mutex
	speed  core.Speed
	pos    time.Duration // position in normal-rate coordinates
	player *player
	eof    bool

	// Recording state.
	rec *recorder
}

// newPlayStream opens content and the client-facing sockets; delivery
// starts when the group's control connection is up (begin).
func (m *MSU) newPlayStream(spec core.StreamSpec, vol msufs.Store) (*stream, error) {
	file, err := vol.Open(spec.Content)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", core.ErrNoSuchContent, spec.Content)
	}
	tree, err := treeFromAttrs(file, vol.BlockSize())
	if err != nil {
		return nil, err
	}
	attrs := file.Attrs()
	length := tree.Length()
	if raw, ok := attrs[AttrLength]; ok {
		if ns, err := strconv.ParseInt(raw, 10, 64); err == nil {
			length = time.Duration(ns)
		}
	}
	every := media.DefaultFilterEvery
	if raw, ok := attrs[AttrEvery]; ok {
		if n, err := strconv.Atoi(raw); err == nil && n > 0 {
			every = n
		}
	}
	s := &stream{
		m:      m,
		spec:   spec,
		vol:    vol,
		tree:   tree,
		file:   file,
		length: length,
		every:  every,
		ffName: attrs[AttrFastFwd],
		fbName: attrs[AttrFastBack],
		speed:  core.Normal,
	}
	dest, err := net.ResolveUDPAddr("udp", spec.DestAddr)
	if err != nil {
		return nil, fmt.Errorf("%w: data address %q: %v", core.ErrBadRequest, spec.DestAddr, err)
	}
	s.dataConn, err = net.DialUDP("udp", nil, dest)
	if err != nil {
		return nil, fmt.Errorf("msu: opening data socket: %w", err)
	}
	if spec.CtrlAddr != "" {
		caddr, err := net.ResolveUDPAddr("udp", spec.CtrlAddr)
		if err != nil {
			s.dataConn.Close()
			return nil, fmt.Errorf("%w: control address %q: %v", core.ErrBadRequest, spec.CtrlAddr, err)
		}
		s.ctrlConn, err = net.DialUDP("udp", nil, caddr)
		if err != nil {
			s.dataConn.Close()
			return nil, fmt.Errorf("msu: opening control socket: %w", err)
		}
	}
	return s, nil
}

// begin starts delivery (or recording) once the group is connected.
func (s *stream) begin() error {
	if s.spec.Record {
		return nil // recorders run as soon as packets arrive
	}
	return s.playAt(core.Normal, 0)
}

// teardown stops all activity and closes sockets.
func (s *stream) teardown() {
	s.stopPlayer()
	if s.rec != nil {
		s.rec.stop()
	}
	if s.dataConn != nil {
		s.dataConn.Close()
	}
	if s.ctrlConn != nil {
		s.ctrlConn.Close()
	}
}

// position reports the stream's normal-rate position.
func (s *stream) position() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

func (s *stream) speedName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.speed.String()
}

func (s *stream) atEOF() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eof
}

// stopPlayer cancels the current delivery goroutines and waits for
// them to drain.
func (s *stream) stopPlayer() {
	s.mu.Lock()
	p := s.player
	s.player = nil
	s.mu.Unlock()
	if p != nil {
		p.stop()
	}
}

// pause halts delivery, keeping the position (§2.1 VCR).
func (s *stream) pause() error {
	if s.spec.Record {
		return fmt.Errorf("%w: cannot pause a recording", core.ErrBadRequest)
	}
	s.stopPlayer()
	return nil
}

// resume restarts normal-rate delivery from the current position.
func (s *stream) resume() error {
	if s.spec.Record {
		return fmt.Errorf("%w: cannot resume a recording", core.ErrBadRequest)
	}
	s.stopPlayer()
	s.mu.Lock()
	pos := s.pos
	s.mu.Unlock()
	if s.group != nil {
		s.group.clearEOF()
	}
	return s.playAt(core.Normal, pos)
}

// seek repositions the stream, staying at the current speed.
func (s *stream) seek(pos time.Duration) error {
	if s.spec.Record {
		return fmt.Errorf("%w: cannot seek a recording", core.ErrBadRequest)
	}
	if pos < 0 {
		pos = 0
	}
	if pos > s.length {
		pos = s.length
	}
	s.stopPlayer()
	s.mu.Lock()
	speed := s.speed
	s.pos = pos
	s.mu.Unlock()
	if s.group != nil {
		s.group.clearEOF()
	}
	return s.playAt(speed, pos)
}

// setSpeed switches to the fast-forward or fast-backward companion
// file at the position corresponding to the current frame (§2.3.1).
func (s *stream) setSpeed(sp core.Speed) error {
	if s.spec.Record {
		return fmt.Errorf("%w: cannot scan a recording", core.ErrBadRequest)
	}
	s.stopPlayer()
	s.mu.Lock()
	pos := s.pos
	s.mu.Unlock()
	if s.group != nil {
		s.group.clearEOF()
	}
	return s.playAt(sp, pos)
}

// fastTree lazily opens a fast-scan companion file, returning its tree
// and the store file backing it (for scheduler-path page location).
func (s *stream) fastTree(name string) (*ibtree.Tree, msufs.StoreFile, error) {
	if name == "" {
		return nil, nil, fmt.Errorf("%w: %q", core.ErrNoFastFile, s.spec.Content)
	}
	file, err := s.vol.Open(name)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: companion %q: %v", core.ErrNoFastFile, name, err)
	}
	t, err := treeFromAttrs(file, s.vol.BlockSize())
	if err != nil {
		return nil, nil, err
	}
	return t, file, nil
}

// playAt launches delivery at the given speed from the given
// normal-rate position.
func (s *stream) playAt(sp core.Speed, normalPos time.Duration) error {
	var tree *ibtree.Tree
	var file msufs.StoreFile
	var treePos time.Duration
	switch sp {
	case core.Normal:
		tree = s.tree
		file = s.file
		treePos = normalPos
	case core.FastForward:
		t, f, err := s.fastTree(s.ffName)
		if err != nil {
			return err
		}
		tree, file = t, f
		treePos = media.MapPosition(normalPos, s.every, true)
	case core.FastBackward:
		t, f, err := s.fastTree(s.fbName)
		if err != nil {
			return err
		}
		tree, file = t, f
		treePos = media.MapPositionBackward(normalPos, s.length, s.every)
	default:
		return fmt.Errorf("%w: speed %v", core.ErrBadRequest, sp)
	}
	// The cache indexes pages by the name of the file actually being
	// read: the content itself at normal speed, its fast-scan
	// companion otherwise.
	cname := s.spec.Content
	switch sp {
	case core.FastForward:
		cname = s.ffName
	case core.FastBackward:
		cname = s.fbName
	}
	p := &player{
		s:        s,
		tree:     tree,
		file:     file,
		speed:    sp,
		startPos: treePos,
		cache:    s.m.cacheFor(s.spec.Disk),
		cname:    cname,
		id:       playerIDs.Add(1),
		cancel:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.mu.Lock()
	s.speed = sp
	s.pos = normalPos
	s.eof = false
	s.player = p
	s.mu.Unlock()
	p.start()
	return nil
}

// updatePos converts a tree-file delivery time to a normal-rate
// position and stores it.
func (s *stream) updatePos(sp core.Speed, treeTime time.Duration) {
	var pos time.Duration
	switch sp {
	case core.FastForward:
		pos = media.MapPosition(treeTime, s.every, false)
	case core.FastBackward:
		pos = s.length - treeTime*time.Duration(s.every)
		if pos < 0 {
			pos = 0
		}
	default:
		pos = treeTime
	}
	s.mu.Lock()
	s.pos = pos
	s.mu.Unlock()
}

// playerEOF marks end-of-content.
func (s *stream) playerEOF(p *player) {
	s.mu.Lock()
	if s.player != p {
		s.mu.Unlock()
		return // superseded by a VCR command
	}
	s.eof = true
	if p.speed == core.FastForward {
		s.pos = s.length
	} else if p.speed == core.FastBackward {
		s.pos = 0
	}
	s.mu.Unlock()
	s.m.obs.eofs.Inc()
	// A finished viewer changes the content's heat: tell the
	// Coordinator so queued plays of now-warm content can admit.
	s.m.reportCache(s.spec.Disk)
	if s.group != nil {
		s.group.memberEOF(s)
	}
}

// descriptor flows through the shared-memory queue from the disk
// goroutine to the network goroutine. It carries no payload bytes: the
// payload is page.Bytes()[off : off+n], aliasing the refcounted page
// buffer the disk goroutine read the whole IB-tree page into. Each
// descriptor holds one reference on its page; the network goroutine
// releases it after the send, so the page returns to the pool when the
// last packet cut from it has left the socket.
type descriptor struct {
	t    time.Duration
	ch   protocol.Channel
	page *queue.PageRef // nil on EOF markers
	off  int
	n    int
	eof  bool
}

// player runs one delivery session, mirroring §2.3's MSU: a disk
// process reading whole 256 KB blocks into buffers it manages itself, a
// network process transmitting packets straight out of those buffers,
// and a shared-memory queue of descriptors between them. Pages recycle
// through a fixed refcounted pool and payloads are never copied, so the
// steady-state path from disk read to UDP write performs zero copies
// and zero allocations.
type player struct {
	s    *stream
	tree *ibtree.Tree
	// file backs tree on the store; nil when the tree is not a store
	// file (test fixtures). Non-nil file plus live schedulers selects
	// the prefetch-ring read path (fetcher); otherwise the disk process
	// reads synchronously through the cursor.
	file     msufs.StoreFile
	speed    core.Speed
	startPos time.Duration
	// cache is the disk's shared RAM interval cache (nil when off):
	// the disk process consults it before every page read, and a hit
	// delivers straight out of the cached page with no disk I/O and no
	// copy. cname is the cache key prefix — the file being read — and
	// id identifies this player in the cache's interval tracking.
	cache  *cache.Cache
	cname  string
	id     uint64
	cancel chan struct{}
	done   chan struct{}
	pool   *queue.PagePool
	// wake and space park the two processes instead of polling: the
	// producer nudges wake after an enqueue into an empty-observed
	// queue window, the consumer nudges space after freeing a slot.
	// Both are 1-buffered, so a nudge is never lost and never blocks.
	wake  chan struct{}
	space chan struct{}
}

// queueDepth is the SPSC capacity between the disk and network sides.
const queueDepth = 512

// readAheadPages bounds the disk process's lead over the network
// process — the paper's double-buffered read-ahead, with two extra
// pages of slack so a page drained mid-iteration never stalls the read.
const readAheadPages = 4

// playerIDs distinguishes players in the cache's interval tracking;
// a stream spawns a fresh player on every VCR transition.
var playerIDs atomic.Uint64

func (p *player) stop() {
	close(p.cancel)
	<-p.done
}

func (p *player) start() {
	poolPages := readAheadPages
	if p.file != nil && len(p.s.m.scheds) > 0 {
		// The prefetch ring stages up to readAheadPages pages while the
		// page just taken off the ring is still being cut into
		// descriptors, so the scheduler path needs one more.
		poolPages++
	}
	pool, err := queue.NewPagePool(p.tree.PageSize(), poolPages)
	if err != nil { // impossible: Open rejects non-positive page sizes
		panic(err)
	}
	p.pool = pool
	if p.cache != nil && p.cache.PageSize() != p.tree.PageSize() {
		p.cache = nil // mismatched geometry (not a store file): no caching
	}
	if p.cache != nil {
		p.cache.PlayerStart(p.cname, p.id, p.tree.Meta().Pages)
	}
	p.wake = make(chan struct{}, 1)
	p.space = make(chan struct{}, 1)
	q := queue.NewSPSC[descriptor](queueDepth)
	diskDone := make(chan struct{})
	go p.diskLoop(q, diskDone)
	go p.netLoop(q, diskDone)
}

// diskLoop is the disk process: it reads whole IB-tree pages into
// pooled refcounted buffers and queues packet descriptors that alias
// the page memory (read-ahead / double buffering). It blocks — parked
// on a channel, not polling — when the queue is full or every pool
// page is still in flight.
func (p *player) diskLoop(q *queue.SPSC[descriptor], diskDone chan struct{}) {
	defer close(diskDone)
	enqueue := func(d descriptor) bool {
		for !q.Enqueue(d) {
			select {
			case <-p.cancel:
				if d.page != nil {
					d.page.Release()
				}
				return false
			case <-p.space:
			}
		}
		select {
		case p.wake <- struct{}{}:
		default:
		}
		return true
	}
	cur, err := p.tree.PageCursorAt(p.startPos)
	if err != nil {
		p.s.m.logf("stream %d: seek: %v", p.s.spec.Stream, err)
		enqueue(descriptor{eof: true}) // t=0: error EOF is reported immediately
		return
	}
	// The prefetch ring (nil on the direct path) pipelines page reads
	// through the per-volume I/O schedulers. Its abort runs before
	// diskDone closes (defer LIFO), so in-flight device transfers are
	// waited out before netLoop's drain proceeds.
	f := newFetcher(p)
	if f != nil {
		defer f.abort()
	}
	// lastT/gap place the EOF marker on the delivery timeline one
	// packet interval after the final packet, so the network goroutine
	// paces the EOF notification like any other item instead of racing
	// it against the last datagram's delivery.
	var lastT, gap time.Duration
	for {
		next := cur.NextPage()
		if next < 0 {
			slack := gap
			if slack <= 0 {
				slack = 2 * time.Millisecond
			}
			enqueue(descriptor{t: lastT + slack, eof: true})
			return
		}
		var page *queue.PageRef
		if f != nil {
			page, err = f.nextPage(cur, next)
		} else {
			page, err = p.loadNextPage(cur, next)
		}
		if err != nil {
			p.s.m.logf("stream %d: read: %v", p.s.spec.Stream, err)
			enqueue(descriptor{eof: true}) // t=0: error EOF is reported immediately
			return
		}
		if page == nil {
			return // cancelled while waiting for a free page
		}
		if p.cache != nil {
			p.cache.PlayerAt(p.cname, p.id, next)
		}
		for {
			span, ok, err := cur.Next()
			if err != nil {
				page.Release()
				p.s.m.logf("stream %d: read: %v", p.s.spec.Stream, err)
				enqueue(descriptor{eof: true})
				return
			}
			if !ok {
				break // page fully cut into descriptors
			}
			buf := page.Bytes()
			off, n := span.Start, span.Len
			ch, _, derr := protocol.DecodeStored(buf[off : off+n])
			if derr == nil {
				off, n = off+1, n-1 // skip the stored channel byte
			} else {
				// Content predating the channel framing: treat as data.
				ch = protocol.Data
			}
			page.Retain() // the descriptor's reference
			if !enqueue(descriptor{t: span.Time, ch: ch, page: page, off: off, n: n}) {
				page.Release() // drop the disk process's own hold too
				return
			}
			if d := span.Time - lastT; d > 0 {
				gap = d
			}
			lastT = span.Time
		}
		// Drop the disk process's hold; outstanding descriptors keep the
		// page alive until the network process sends the last of them.
		page.Release()
	}
}

// loadNextPage produces the page NextPage announced, preferring the
// disk's RAM cache. A hit pins the cached page and attaches its bytes
// to the cursor — zero disk I/O, zero copy, zero allocation. A miss
// reads from disk, into a cache page when one is allocatable (the page
// is then inserted for every later player) or into the player's
// private read-ahead pool when the cache is fully pinned. Returns
// (nil, nil) only when cancelled while waiting for a private page.
func (p *player) loadNextPage(cur *ibtree.PageCursor, next int64) (*queue.PageRef, error) {
	if p.cache != nil {
		if hit := p.cache.Lookup(p.cname, next); hit != nil {
			ok, err := cur.AttachPage(hit.Bytes())
			if err == nil && ok {
				p.s.m.obs.cacheHits.Inc()
				return hit, nil
			}
			// The entry failed page verification (or the cursor is past
			// the end, which NextPage already excluded): purge it and
			// fall back to the disk read.
			hit.Release()
			p.cache.Invalidate(p.cname, next)
			p.s.m.logf("stream %d: cached page %d invalid: %v", p.s.spec.Stream, next, err)
		}
	}
	var page *queue.PageRef
	insert := false
	if p.cache != nil {
		if page = p.cache.Alloc(); page != nil {
			insert = true
		}
	}
	if page == nil {
		if page = p.pool.Get(p.cancel); page == nil {
			return nil, nil
		}
	}
	ok, err := cur.LoadPage(page.Bytes())
	if err != nil {
		page.Release()
		return nil, err
	}
	if !ok { // impossible: NextPage said this page exists
		page.Release()
		return nil, fmt.Errorf("msu: page %d vanished mid-read", next)
	}
	p.s.m.obs.pagesRead.Inc()
	if insert {
		p.cache.Insert(p.cname, next, page)
	}
	return page, nil
}

// netLoop is the network process: it dequeues descriptors and sends
// each packet at its scheduled time, writing straight out of the page
// buffer. One timer paces every packet of the session; an empty queue
// parks the goroutine on the wake channel instead of spinning.
func (p *player) netLoop(q *queue.SPSC[descriptor], diskDone chan struct{}) {
	defer close(p.done)
	if p.cache != nil {
		// Deregister from the cache's interval tracking when the session
		// ends, and advertise the heat change. Runs before done closes;
		// no MSU lock is held while stop() waits, so the notify is safe.
		defer func() {
			p.cache.PlayerStop(p.cname, p.id)
			p.s.m.reportCache(p.s.spec.Disk)
		}()
	}
	// drain releases the page references still queued when the session
	// ends, so every pool page is accounted for at teardown.
	drain := func() {
		<-diskDone // the disk process exits promptly once cancel closes
		for {
			d, ok := q.Dequeue()
			if !ok {
				return
			}
			if d.page != nil {
				d.page.Release()
			}
		}
	}
	// The session's single pacing timer, armed per packet that needs
	// waiting and drained on every path that did not consume it.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	// om aliases the MSU's pre-registered handles: the per-packet path
	// below touches only these atomics (nil-safe no-ops on a zero-value
	// MSU), keeping the loop at 0 allocs/op.
	om := &p.s.m.obs
	epoch := time.Now()
	for {
		d, ok := q.Dequeue()
		if !ok {
			select {
			case <-p.cancel:
				drain()
				return
			case <-p.wake:
				continue
			}
		}
		select {
		case p.space <- struct{}{}:
		default:
		}
		// Pace first — EOF descriptors carry a timestamp just past the
		// final packet, so end-of-stream is announced on the delivery
		// timeline, never before the last datagram has been sent.
		target := epoch.Add(d.t - p.startPos)
		w := time.Until(target)
		if w > 0 {
			timer.Reset(w)
			select {
			case <-p.cancel:
				if !timer.Stop() {
					<-timer.C
				}
				if d.page != nil {
					d.page.Release()
				}
				drain()
				return
			case <-timer.C:
			}
		}
		if d.eof {
			p.s.playerEOF(p)
			// Stay parked until cancelled so stop() never blocks.
			<-p.cancel
			drain()
			return
		}
		conn := p.s.dataConn
		if d.ch == protocol.Control && p.s.ctrlConn != nil {
			conn = p.s.ctrlConn
		}
		payload := d.page.Bytes()[d.off : d.off+d.n]
		if _, err := conn.Write(payload); err != nil {
			select {
			case <-p.cancel: // socket closed by teardown
				d.page.Release()
				drain()
				return
			default:
			}
			p.s.m.logf("stream %d: send: %v", p.s.spec.Stream, err)
		}
		d.page.Release()
		// A packet sent at w>0 waited for its slot (lateness ~0, clamped
		// into the first bucket); w<0 means it left -w behind schedule.
		// -w was computed for the pacing wait anyway, so observing it
		// costs no extra clock read.
		om.packets.Inc()
		om.bytes.Add(int64(d.n))
		om.lateness.Observe(-w)
		p.s.updatePos(p.speed, d.t)
	}
}
