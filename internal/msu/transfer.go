package msu

import (
	"fmt"
	"net"
	"time"

	"calliope/internal/iosched"
	"calliope/internal/msufs"
	"calliope/internal/replicate"
)

// The source side of MSU-to-MSU replication (internal/replicate): a
// dedicated TCP transfer listener accepts pull requests from peer MSUs
// and streams committed content files block by block. Reads ride the
// per-volume I/O schedulers with a deadline transferReadLag behind now,
// so in the deadline-banded C-SCAN rounds every live stream's read
// sorts ahead of the copy — the copy consumes idle disk time only
// (bounded by the scheduler's staleness guarantee, so it still makes
// progress under sustained load).

// transferReadLag is how far behind "now" a replication read's deadline
// sits. Live delivery deadlines run at most a few pages ahead of now,
// so this keeps copies strictly less urgent than any play.
const transferReadLag = 500 * time.Millisecond

// transferRequestTimeout bounds how long an accepted transfer
// connection may idle before sending its request.
const transferRequestTimeout = 10 * time.Second

// startTransferListener opens the replication transfer port and its
// accept loop. Callers hold no locks.
func (m *MSU) startTransferListener() error {
	listen := m.cfg.Listen
	if listen == nil {
		listen = net.Listen
	}
	ln, err := listen("tcp", net.JoinHostPort(m.cfg.Host, "0"))
	if err != nil {
		return fmt.Errorf("msu: transfer listener: %w", err)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		ln.Close() //nolint:errcheck // already shutting down
		return nil
	}
	m.transferLn = ln
	m.wg.Add(1)
	m.mu.Unlock()
	go m.acceptTransfers(ln)
	return nil
}

// acceptTransfers serves inbound copy-out requests until the listener
// closes.
func (m *MSU) acceptTransfers(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		if !m.trackConn(conn) {
			conn.Close() //nolint:errcheck // shutting down
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.untrackConn(conn)
			if err := m.serveTransfer(conn); err != nil {
				m.logf("transfer: %v", err)
			}
		}()
	}
}

// trackConn registers a live transfer connection so Close can sever it;
// false means the MSU is already shutting down.
func (m *MSU) trackConn(conn net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if m.transferConns == nil {
		m.transferConns = make(map[net.Conn]struct{})
	}
	m.transferConns[conn] = struct{}{}
	return true
}

func (m *MSU) untrackConn(conn net.Conn) {
	conn.Close() //nolint:errcheck // double-close on the abort path is fine
	m.mu.Lock()
	delete(m.transferConns, conn)
	m.mu.Unlock()
}

// serveTransfer answers one pull: read the request, resolve the content
// to its committed files (main plus fast-scan companions), and stream
// them from the requested resume offsets.
func (m *MSU) serveTransfer(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(transferRequestTimeout)) //nolint:errcheck // best effort
	req, err := replicate.ReadRequest(conn)
	if err != nil {
		return fmt.Errorf("reading request: %w", err)
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck // best effort
	files, err := m.sourceFiles(req.Content)
	if err != nil {
		return err
	}
	m.logf("transfer: serving %q to %s", req.Content, conn.RemoteAddr())
	pace := ratePacer(req.Rate)
	// The pace hook sees every chunk leave; piggyback the copy-out byte
	// counter on it rather than wrapping the connection.
	counted := func(n int) {
		m.obs.transferOut.Add(int64(n))
		if pace != nil {
			pace(n)
		}
	}
	if err := replicate.Serve(conn, files, req, replicate.ServeOptions{Pace: counted}); err != nil {
		return fmt.Errorf("serving %q: %w", req.Content, err)
	}
	return nil
}

// sourceFiles resolves a committed content item to the transfer file
// set: the main file first, then any fast-forward/backward companions,
// each read through the volume's I/O scheduler at background priority.
func (m *MSU) sourceFiles(content string) ([]replicate.SourceFile, error) {
	for _, store := range m.stores {
		st, err := store.Stat(content)
		if err != nil || st.Attrs[AttrType] == "" {
			continue // absent here, or an uncommitted partial
		}
		names := []string{content}
		for _, companion := range []string{st.Attrs[AttrFastFwd], st.Attrs[AttrFastBack]} {
			if companion != "" {
				names = append(names, companion)
			}
		}
		files := make([]replicate.SourceFile, 0, len(names))
		for _, name := range names {
			f, err := store.Open(name)
			if err != nil {
				return nil, fmt.Errorf("transfer: open %q: %w", name, err)
			}
			files = append(files, m.sourceFile(store.BlockSize(), f))
		}
		return files, nil
	}
	return nil, fmt.Errorf("transfer: no committed %q here", content)
}

// sourceFile adapts one store file for the copy engine. Blocks for a
// committed file is exactly the count holding Size bytes.
func (m *MSU) sourceFile(blockSize int, f msufs.StoreFile) replicate.SourceFile {
	size := f.Size()
	blocks := (size + int64(blockSize) - 1) / int64(blockSize)
	return replicate.SourceFile{
		Name:      f.Name(),
		Size:      size,
		Blocks:    blocks,
		BlockSize: blockSize,
		Attrs:     f.Attrs(),
		ReadBlock: func(i int64, p []byte) (int, error) {
			n := f.BlockLen(i)
			if n <= 0 {
				return 0, fmt.Errorf("block %d out of range", i)
			}
			vol, off, err := f.Locate(i)
			if err == nil {
				if sched := m.schedFor(vol); sched != nil {
					return n, schedRead(sched, off, p[:blockSize])
				}
			}
			return n, f.ReadBlock(i, p[:blockSize])
		},
	}
}

// schedRead submits one background-deadline read and waits for it.
func schedRead(sched *iosched.Scheduler, off int64, buf []byte) error {
	req := iosched.Request{
		Off:      off,
		Buf:      buf,
		Deadline: time.Now().Add(transferReadLag),
		C:        make(chan *iosched.Request, 1),
	}
	sched.Submit(&req)
	<-req.C
	return req.Err
}

// ratePacer returns a Pace hook holding the transfer at rate bits/s: it
// tracks where the send clock should be and sleeps off any lead. A
// stall (scheduler wait, TCP backpressure) is forgiven rather than
// banked, so the copy never bursts past its grant to catch up.
func ratePacer(rate int64) func(int) {
	if rate <= 0 {
		return nil
	}
	next := time.Now()
	return func(n int) {
		next = next.Add(time.Duration(float64(n*8) / float64(rate) * float64(time.Second)))
		now := time.Now()
		if next.Before(now) {
			next = now
			return
		}
		time.Sleep(next.Sub(now))
	}
}
