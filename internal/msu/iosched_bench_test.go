package msu

// BenchmarkIOSched measures the per-disk I/O scheduler on the live
// delivery path (§2.2.1): 24 concurrent players over one Sim-backed
// volume, scheduler rounds (C-SCAN + coalescing via the prefetch ring)
// against the DirectIO ablation where every player issues its own
// blocking read. The Sim device serializes transfers on one mechanical
// model — seek curve, rotational latency, media rate — scaled down by
// TimeScale, so the ns/op gap between the two variants is the
// elevator's mechanical win replayed in miniature. The session harness
// lives in measure.go, shared with cmd/calliope-bench's -json output.

import (
	"fmt"
	"testing"

	"calliope/internal/blockdev"
	"calliope/internal/core"
	"calliope/internal/msufs"
	"calliope/internal/units"
)

const (
	// benchReaders is the concurrent player count — the acceptance
	// point the scheduler's gain is specified at.
	benchReaders = 24
	// benchPacketsPerTitle sizes each player's content: 256 packets of
	// 4 KB ≈ 17 64 KB IB-tree pages, enough that every session sweeps
	// the elevator across distinct disk regions many times.
	benchPacketsPerTitle = 256
	// benchSimScale divides the 1996 Barracuda's mechanical delays so a
	// full 24-reader session replays in a fraction of a second. Scaled
	// delays stay well above the OS sleep granularity (~100 µs), so the
	// seek-vs-transfer proportions — and the elevator's win — survive
	// the scaling.
	benchSimScale = 100
)

// newTestMSU is newBenchMSU with test lifecycle management.
func newTestMSU(tb testing.TB, direct, striped bool, vols ...*msufs.Volume) *MSU {
	tb.Helper()
	m, err := newBenchMSU(direct, striped, vols...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { m.Close() }) //nolint:errcheck // best-effort teardown
	return m
}

// openTestStream is openBenchStream with test lifecycle management.
func openTestStream(tb testing.TB, m *MSU, disk int, id core.StreamID, name string) *stream {
	tb.Helper()
	s, cleanup, err := openBenchStream(m, disk, id, name)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cleanup)
	tb.Cleanup(s.stopPlayer) // stop stragglers if the test bails mid-session
	return s
}

// runSession plays every stream from the start to EOF concurrently,
// then stops the players.
func runSession(tb testing.TB, streams []*stream) {
	tb.Helper()
	if err := playSession(streams); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkIOSched compares scheduler rounds against direct reads at 24
// concurrent readers. One op is one full session: every reader plays
// its own title end to end. Alongside ns/op it reports the Sim's head
// travel per session — the deterministic quantity C-SCAN shrinks.
func BenchmarkIOSched(b *testing.B) {
	for _, variant := range []struct {
		name   string
		direct bool
	}{
		{"sched", false},
		{"direct", true},
	} {
		b.Run(variant.name, func(b *testing.B) {
			vol, err := newSimVolume(64*int64(units.MB), benchSimScale)
			if err != nil {
				b.Fatal(err)
			}
			sim := vol.Device().(*blockdev.Sim)
			m := newTestMSU(b, variant.direct, false, vol)
			pkts := flatPackets(benchPacketsPerTitle)
			streams := make([]*stream, benchReaders)
			for i := range streams {
				name := fmt.Sprintf("title-%02d", i)
				if err := Ingest(m.stores[0], name, "mpeg1", pkts); err != nil {
					b.Fatal(err)
				}
				streams[i] = openTestStream(b, m, 0, core.StreamID(i+1), name)
			}
			seekBase, opsBase := sim.SeekBytes(), sim.Ops()
			b.SetBytes(int64(benchReaders) * benchPacketsPerTitle * 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, streams)
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(sim.SeekBytes()-seekBase)/n/1e6, "seekMB/op")
			b.ReportMetric(float64(sim.Ops()-opsBase)/n, "xfers/op")
		})
	}
}
