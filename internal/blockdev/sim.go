package blockdev

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"calliope/internal/units"
)

// SimConfig calibrates a Sim device's disk mechanism: a seek curve
// (settle plus full-span time scaled by the square root of the
// distance fraction), rotational latency, and media transfer rate —
// the same model internal/simhw uses for the paper's 2 GB Barracudas,
// here applied to real wall-clock sleeps so the live MSU delivery path
// can be benchmarked against mechanical disk behavior.
type SimConfig struct {
	SeekSettle     time.Duration // head settle per repositioning
	SeekFullSpan   time.Duration // seek across the whole device, scaled by sqrt of fraction
	RotationPeriod time.Duration // one revolution; latency is uniform in [0, period)
	MediaRate      units.BitRate // platter transfer rate
	// TimeScale divides every mechanical delay, so benches can replay
	// the seek-vs-transfer proportions without 1996 wall-clock times.
	// Zero means 1 (real time).
	TimeScale float64
	Seed      int64
}

// DefaultSimConfig mirrors simhw.DefaultConfig's disk constants (the
// calibration simhw's tests pin against Table 1); sim_test.go asserts
// the two stay in sync.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		SeekSettle:     1500 * time.Microsecond,
		SeekFullSpan:   8 * time.Millisecond,
		RotationPeriod: 8333 * time.Microsecond, // 7200 rpm
		MediaRate:      64 * units.Mbps,         // 8 MB/s platter rate
		TimeScale:      1,
		Seed:           1,
	}
}

// Sim wraps a backing device (usually Mem) with the mechanical timing
// of one disk. The mechanism is a single resource: transfers serialize
// on an internal mutex and each sleeps for its modelled seek + rotation
// + media time (divided by TimeScale) before the backing I/O runs.
// Concurrent callers therefore contend exactly the way unscheduled
// readers contend for a real spindle, which is what BenchmarkIOSched's
// direct-read ablation measures against the C-SCAN rounds.
type Sim struct {
	dev BlockDevice
	cfg SimConfig

	mu        sync.Mutex
	head      int64
	rng       *rand.Rand
	ops       int64
	seekBytes int64
	busy      time.Duration // unscaled mechanical time
}

// NewSim wraps dev with the mechanical model.
func NewSim(dev BlockDevice, cfg SimConfig) *Sim {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	return &Sim{dev: dev, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// occupy holds the mechanism for one transfer of total bytes at off:
// it accounts the seek, sleeps the scaled mechanical time, and leaves
// the head at the transfer's end. Callers hold s.mu.
func (s *Sim) occupy(off, total int64) {
	dist := off - s.head
	if dist < 0 {
		dist = -dist
	}
	var cost time.Duration
	if dist > 0 {
		frac := float64(dist) / float64(s.dev.Size())
		cost += s.cfg.SeekSettle + time.Duration(float64(s.cfg.SeekFullSpan)*math.Sqrt(frac))
		if s.cfg.RotationPeriod > 0 {
			cost += time.Duration(s.rng.Int63n(int64(s.cfg.RotationPeriod)))
		}
	}
	cost += s.cfg.MediaRate.Duration(units.ByteSize(total))
	s.head = off + total
	s.ops++
	s.seekBytes += dist
	s.busy += cost
	time.Sleep(time.Duration(float64(cost) / s.cfg.TimeScale))
}

// ReadAt implements BlockDevice with mechanical timing.
func (s *Sim) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	s.occupy(off, int64(len(p)))
	s.mu.Unlock()
	return s.dev.ReadAt(p, off)
}

// ReadAtv implements VectorReader: one seek plus one contiguous media
// transfer covering every buffer — the payoff the scheduler's
// coalescing is after.
func (s *Sim) ReadAtv(off int64, bufs ...[]byte) error {
	var total int64
	for _, b := range bufs {
		total += int64(len(b))
	}
	s.mu.Lock()
	s.occupy(off, total)
	s.mu.Unlock()
	return ReadVector(s.dev, off, bufs...)
}

// WriteAt implements BlockDevice with mechanical timing.
func (s *Sim) WriteAt(p []byte, off int64) error {
	s.mu.Lock()
	s.occupy(off, int64(len(p)))
	s.mu.Unlock()
	return s.dev.WriteAt(p, off)
}

// Size implements BlockDevice.
func (s *Sim) Size() int64 { return s.dev.Size() }

// Close implements BlockDevice.
func (s *Sim) Close() error { return s.dev.Close() }

// Ops reports the number of transfers serviced.
func (s *Sim) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// SeekBytes reports the total head travel — the deterministic
// quantity the elevator tests assert shrinks under C-SCAN ordering.
func (s *Sim) SeekBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seekBytes
}

// BusyTime reports the total unscaled mechanical time the device
// spent seeking, rotating and transferring.
func (s *Sim) BusyTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy
}
