package blockdev_test

import (
	"bytes"
	"testing"
	"time"

	"calliope/internal/blockdev"
	"calliope/internal/simhw"
)

// TestDefaultSimConfigMatchesSimhw pins the Sim device's mechanical
// calibration to simhw.DefaultConfig's disk constants: the wall-clock
// bench device and the discrete-event model must describe the same
// 1996 Barracuda, or E6 (simulated elevator gain) and BenchmarkIOSched
// (live-path elevator gain) stop being comparable.
func TestDefaultSimConfigMatchesSimhw(t *testing.T) {
	got := blockdev.DefaultSimConfig()
	want := simhw.DefaultConfig()
	if got.SeekSettle != want.SeekSettle {
		t.Errorf("SeekSettle %v, simhw has %v", got.SeekSettle, want.SeekSettle)
	}
	if got.SeekFullSpan != want.SeekFullSpan {
		t.Errorf("SeekFullSpan %v, simhw has %v", got.SeekFullSpan, want.SeekFullSpan)
	}
	if got.RotationPeriod != want.RotationPeriod {
		t.Errorf("RotationPeriod %v, simhw has %v", got.RotationPeriod, want.RotationPeriod)
	}
	if got.MediaRate != want.MediaRate {
		t.Errorf("MediaRate %v, simhw has %v", got.MediaRate, want.MediaRate)
	}
}

// fastSim builds a Sim over fresh memory with mechanical delays scaled
// down to keep the test quick but nonzero.
func fastSim(t *testing.T, size int64) (*blockdev.Sim, *blockdev.Mem) {
	t.Helper()
	m, err := blockdev.NewMem(size)
	if err != nil {
		t.Fatal(err)
	}
	cfg := blockdev.DefaultSimConfig()
	cfg.TimeScale = 10000
	return blockdev.NewSim(m, cfg), m
}

// TestSimDataPath verifies Sim is transparent to the data: writes and
// reads hit the backing device unchanged, vectored reads scatter into
// each buffer.
func TestSimDataPath(t *testing.T) {
	s, _ := fastSim(t, 1<<20)
	want := []byte("seek, rotate, transfer")
	if err := s.WriteAt(want, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := s.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}

	a, b := make([]byte, 11), make([]byte, 11)
	if err := s.ReadAtv(4096, a, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(append([]byte(nil), a...), b...), want) {
		t.Fatalf("vectored read got %q+%q, want %q split across buffers", a, b, want)
	}
}

// TestSimAccounting verifies the deterministic mechanical counters: op
// count, head travel, and busy time that grows with seek distance.
func TestSimAccounting(t *testing.T) {
	s, _ := fastSim(t, 1<<20)
	buf := make([]byte, 4096)
	if err := s.ReadAt(buf, 0); err != nil { // head 0 → 4096, no seek
		t.Fatal(err)
	}
	if err := s.ReadAt(buf, 512*1024); err != nil { // long seek
		t.Fatal(err)
	}
	if got := s.Ops(); got != 2 {
		t.Fatalf("Ops = %d, want 2", got)
	}
	wantSeek := int64(512*1024 - 4096)
	if got := s.SeekBytes(); got != wantSeek {
		t.Fatalf("SeekBytes = %d, want %d", got, wantSeek)
	}
	// Busy time covers at least the media transfers plus one settle.
	cfg := blockdev.DefaultSimConfig()
	minBusy := 2*cfg.MediaRate.Duration(4096) + cfg.SeekSettle
	if got := s.BusyTime(); got < minBusy {
		t.Fatalf("BusyTime = %v, want at least %v", got, minBusy)
	}
}

// TestSimCoalescedCheaper verifies the mechanical payoff coalescing is
// after: one vectored transfer of N blocks costs less mechanism time
// than N separate transfers of the same blocks (one seek+rotation
// amortized across the group).
func TestSimCoalescedCheaper(t *testing.T) {
	const block, n = 4096, 8
	single, _ := fastSim(t, 1<<20)
	buf := make([]byte, block)
	// Force a repositioning before each read: hop away, then read the
	// next sequential block, as an unscheduled reader interleaved with
	// others would.
	for i := 0; i < n; i++ {
		if err := single.ReadAt(buf, 900*1024); err != nil {
			t.Fatal(err)
		}
		if err := single.ReadAt(buf, int64(i)*block); err != nil {
			t.Fatal(err)
		}
	}

	coalesced, _ := fastSim(t, 1<<20)
	if err := coalesced.ReadAt(buf, 900*1024); err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = make([]byte, block)
	}
	if err := coalesced.ReadAtv(0, bufs...); err != nil {
		t.Fatal(err)
	}

	// Compare only the mechanism time spent on the n data blocks (strip
	// the hop reads, which differ in count between the two runs).
	if single.BusyTime() <= coalesced.BusyTime() {
		t.Fatalf("scattered reads busy %v, coalesced busy %v: coalescing should be cheaper",
			single.BusyTime(), coalesced.BusyTime())
	}
	if co, si := coalesced.Ops(), single.Ops(); co != 2 || si != int64(2*n) {
		t.Fatalf("ops coalesced=%d single=%d, want 2 and %d", co, si, 2*n)
	}
}

// TestSimTimeScale verifies TimeScale divides the wall-clock delay but
// not the accounted busy time.
func TestSimTimeScale(t *testing.T) {
	m, err := blockdev.NewMem(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := blockdev.DefaultSimConfig()
	cfg.TimeScale = 1e6 // mechanical milliseconds become nanoseconds
	s := blockdev.NewSim(m, cfg)
	buf := make([]byte, 64*1024)
	start := time.Now()
	if err := s.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("scaled read took %v wall time", elapsed)
	}
	if busy := s.BusyTime(); busy < cfg.MediaRate.Duration(64*1024) {
		t.Fatalf("BusyTime %v below the unscaled transfer time", busy)
	}
}
