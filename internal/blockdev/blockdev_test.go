package blockdev

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"
)

// deviceUnderTest runs the common BlockDevice contract tests.
func deviceContract(t *testing.T, dev BlockDevice, size int64) {
	t.Helper()
	if dev.Size() != size {
		t.Fatalf("Size() = %d, want %d", dev.Size(), size)
	}

	// Fresh device reads as zeros.
	buf := make([]byte, 64)
	if err := dev.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt fresh: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatal("fresh device not zeroed")
	}

	// Round trip at an interior offset.
	want := []byte("calliope multimedia storage unit")
	if err := dev.WriteAt(want, 128); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if err := dev.ReadAt(got, 128); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip mismatch: %q != %q", got, want)
	}

	// Boundary conditions.
	if err := dev.WriteAt([]byte{1}, size-1); err != nil {
		t.Fatalf("write at last byte: %v", err)
	}
	if err := dev.WriteAt([]byte{1}, size); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write past end: got %v, want ErrOutOfRange", err)
	}
	if err := dev.ReadAt(make([]byte, 2), size-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read spanning end: got %v, want ErrOutOfRange", err)
	}
	if err := dev.ReadAt(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative offset: got %v, want ErrOutOfRange", err)
	}
}

func TestMemContract(t *testing.T) {
	dev, err := NewMem(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	deviceContract(t, dev, 4096)
}

func TestFileContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk0")
	dev, err := OpenFile(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	deviceContract(t, dev, 4096)
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk0")
	dev, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteAt([]byte("persist"), 10); err != nil {
		t.Fatal(err)
	}
	dev.Close()

	dev2, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	got := make([]byte, 7)
	if err := dev2.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Fatalf("reopened read = %q", got)
	}
}

func TestInvalidSizes(t *testing.T) {
	if _, err := NewMem(0); err == nil {
		t.Error("NewMem(0) accepted")
	}
	if _, err := NewMem(-5); err == nil {
		t.Error("NewMem(-5) accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Error("OpenFile size 0 accepted")
	}
}

func TestMemClosed(t *testing.T) {
	dev, _ := NewMem(100)
	dev.Close()
	if err := dev.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: %v", err)
	}
	if err := dev.WriteAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
}

func TestFaultyInjection(t *testing.T) {
	base, _ := NewMem(1024)
	dev := NewFaulty(base)

	// No faults armed: I/O passes through.
	if err := dev.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadAt(make([]byte, 3), 0); err != nil {
		t.Fatal(err)
	}

	dev.FailReadsAfter(2)
	for i := 0; i < 2; i++ {
		if err := dev.ReadAt(make([]byte, 1), 0); err != nil {
			t.Fatalf("read %d should succeed: %v", i, err)
		}
	}
	if err := dev.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 3: got %v, want ErrInjected", err)
	}
	// Writes unaffected.
	if err := dev.WriteAt([]byte{9}, 0); err != nil {
		t.Fatalf("write during read faults: %v", err)
	}

	dev.FailWritesAfter(0)
	if err := dev.WriteAt([]byte{9}, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("immediate write fault: got %v", err)
	}

	dev.Heal()
	if err := dev.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatalf("read after Heal: %v", err)
	}
	if err := dev.WriteAt([]byte{1}, 0); err != nil {
		t.Fatalf("write after Heal: %v", err)
	}
}

func TestCounting(t *testing.T) {
	base, _ := NewMem(1024)
	dev := NewCounting(base)
	dev.WriteAt(make([]byte, 100), 0)
	dev.WriteAt(make([]byte, 50), 100)
	dev.ReadAt(make([]byte, 150), 0)
	if got := dev.Writes.Load(); got != 2 {
		t.Errorf("Writes = %d, want 2", got)
	}
	if got := dev.BytesWritten.Load(); got != 150 {
		t.Errorf("BytesWritten = %d, want 150", got)
	}
	if got := dev.Reads.Load(); got != 1 {
		t.Errorf("Reads = %d, want 1", got)
	}
	if got := dev.BytesRead.Load(); got != 150 {
		t.Errorf("BytesRead = %d, want 150", got)
	}
}

// Property: non-overlapping writes are all independently readable.
func TestMemWriteReadProperty(t *testing.T) {
	dev, _ := NewMem(1 << 16)
	f := func(chunks [][]byte) bool {
		off := int64(0)
		var offsets []int64
		for _, c := range chunks {
			if len(c) == 0 || off+int64(len(c)) > dev.Size() {
				break
			}
			if err := dev.WriteAt(c, off); err != nil {
				return false
			}
			offsets = append(offsets, off)
			off += int64(len(c))
		}
		off = 0
		for i, c := range chunks {
			if i >= len(offsets) {
				break
			}
			got := make([]byte, len(c))
			if err := dev.ReadAt(got, offsets[i]); err != nil {
				return false
			}
			if !bytes.Equal(got, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCountingStatsAndReset(t *testing.T) {
	mem, err := NewMem(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewCounting(mem)
	var _ StatReader = dev // Counting implements StatReader
	buf := make([]byte, 512)
	if err := dev.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats()
	for i := 0; i < 3; i++ {
		if err := dev.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	d := dev.Stats().Sub(before)
	if d.Reads != 3 || d.BytesRead != 3*512 || d.Writes != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if got := dev.Stats(); got.Writes != 1 || got.BytesWritten != 512 {
		t.Fatalf("stats = %+v", got)
	}
	dev.Reset()
	if got := dev.Stats(); got != (IOStats{}) {
		t.Fatalf("stats after Reset = %+v", got)
	}
}
