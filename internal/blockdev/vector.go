package blockdev

// A VectorReader is a device that can fill several destination buffers
// from one contiguous device region in a single transfer: bufs[0] is
// read at off, bufs[1] right after it, and so on. The I/O scheduler
// (internal/iosched) uses it to coalesce device-adjacent page requests
// into one large read that still scatters into each request's own
// refcounted page — the zero-copy contract holds because the device
// writes straight into the callers' buffers.
type VectorReader interface {
	ReadAtv(off int64, bufs ...[]byte) error
}

// ReadVector reads bufs from dev at consecutive offsets starting at
// off, as a single transfer when dev implements VectorReader and as
// sequential ReadAt calls otherwise. The fallback keeps per-buffer
// fault injection working: a wrapper that fails individual reads (e.g.
// Faulty) deliberately does not implement VectorReader, so each
// coalesced request still passes through its fault check.
func ReadVector(dev BlockDevice, off int64, bufs ...[]byte) error {
	if vr, ok := dev.(VectorReader); ok {
		return vr.ReadAtv(off, bufs...)
	}
	for _, b := range bufs {
		if err := dev.ReadAt(b, off); err != nil {
			return err
		}
		off += int64(len(b))
	}
	return nil
}

// ReadAtv implements VectorReader with accounting: one coalesced
// transfer counts as a single read of the total byte count, which is
// exactly what the scheduler benches assert.
func (c *Counting) ReadAtv(off int64, bufs ...[]byte) error {
	var total int64
	for _, b := range bufs {
		total += int64(len(b))
	}
	c.Reads.Add(1)
	c.BytesRead.Add(total)
	return ReadVector(c.BlockDevice, off, bufs...)
}
