// Package blockdev abstracts the raw disks under the MSU file system.
//
// The paper's MSU bypasses the BSD fast file system and issues raw disk
// I/O (§2.3.3). Here a BlockDevice is that raw device: a flat array of
// bytes addressed by offset. Implementations include an in-memory disk
// (tests, benchmarks, examples), a file-backed disk (persistence), and
// wrappers that inject faults or account for I/O, so the MSU and file
// system can be exercised under failure.
package blockdev

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Common device errors.
var (
	ErrOutOfRange = errors.New("blockdev: I/O beyond device size")
	ErrClosed     = errors.New("blockdev: device closed")
	ErrInjected   = errors.New("blockdev: injected fault")
)

// A BlockDevice is a raw random-access device. Implementations must be
// safe for concurrent use; the MSU issues one I/O per disk at a time,
// but tests and the striped layout do not.
type BlockDevice interface {
	// ReadAt reads len(p) bytes at offset off. Short reads are errors.
	ReadAt(p []byte, off int64) error
	// WriteAt writes len(p) bytes at offset off. Short writes are errors.
	WriteAt(p []byte, off int64) error
	// Size reports the device capacity in bytes.
	Size() int64
	// Close releases the device.
	Close() error
}

// Mem is an in-memory BlockDevice.
type Mem struct {
	mu     sync.RWMutex
	data   []byte
	closed bool
}

// NewMem returns an in-memory device of the given size.
func NewMem(size int64) (*Mem, error) {
	if size <= 0 {
		return nil, fmt.Errorf("blockdev: invalid size %d", size)
	}
	return &Mem{data: make([]byte, size)}, nil
}

func (m *Mem) check(n int, off int64) error {
	if m.closed {
		return ErrClosed
	}
	if off < 0 || off+int64(n) > int64(len(m.data)) {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, n, len(m.data))
	}
	return nil
}

// ReadAt implements BlockDevice.
func (m *Mem) ReadAt(p []byte, off int64) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.check(len(p), off); err != nil {
		return err
	}
	copy(p, m.data[off:])
	return nil
}

// WriteAt implements BlockDevice.
func (m *Mem) WriteAt(p []byte, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(len(p), off); err != nil {
		return err
	}
	copy(m.data[off:], p)
	return nil
}

// Size implements BlockDevice.
func (m *Mem) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data))
}

// Close implements BlockDevice.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// File is a BlockDevice backed by a regular file (or a real raw device
// node, where the OS permits).
type File struct {
	f    *os.File
	size int64
}

// OpenFile opens (creating and truncating to size if needed) a
// file-backed device.
func OpenFile(path string, size int64) (*File, error) {
	if size <= 0 {
		return nil, fmt.Errorf("blockdev: invalid size %d", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockdev: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blockdev: stat %s: %w", path, err)
	}
	if st.Size() != size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("blockdev: truncate %s: %w", path, err)
		}
	}
	return &File{f: f, size: size}, nil
}

// ReadAt implements BlockDevice.
func (d *File) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > d.size {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, len(p), d.size)
	}
	if _, err := d.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("blockdev: read: %w", err)
	}
	return nil
}

// WriteAt implements BlockDevice.
func (d *File) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > d.size {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, len(p), d.size)
	}
	if _, err := d.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("blockdev: write: %w", err)
	}
	return nil
}

// Size implements BlockDevice.
func (d *File) Size() int64 { return d.size }

// Close implements BlockDevice.
func (d *File) Close() error { return d.f.Close() }

// Faulty wraps a device and fails I/Os on demand, for failure-injection
// tests of the file system and MSU.
type Faulty struct {
	BlockDevice
	// failReadAfter / failWriteAfter: number of successful operations
	// before every subsequent one fails. Negative means never fail.
	failReadAfter  atomic.Int64
	failWriteAfter atomic.Int64
	reads          atomic.Int64
	writes         atomic.Int64
}

// NewFaulty wraps dev; initially no faults are armed.
func NewFaulty(dev BlockDevice) *Faulty {
	f := &Faulty{BlockDevice: dev}
	f.failReadAfter.Store(-1)
	f.failWriteAfter.Store(-1)
	return f
}

// FailReadsAfter arms read failures after n more successful reads.
func (f *Faulty) FailReadsAfter(n int64) { f.failReadAfter.Store(f.reads.Load() + n) }

// FailWritesAfter arms write failures after n more successful writes.
func (f *Faulty) FailWritesAfter(n int64) { f.failWriteAfter.Store(f.writes.Load() + n) }

// Heal disarms all failures.
func (f *Faulty) Heal() {
	f.failReadAfter.Store(-1)
	f.failWriteAfter.Store(-1)
}

// ReadAt implements BlockDevice with fault injection.
func (f *Faulty) ReadAt(p []byte, off int64) error {
	limit := f.failReadAfter.Load()
	if limit >= 0 && f.reads.Load() >= limit {
		return fmt.Errorf("%w: read at %d", ErrInjected, off)
	}
	f.reads.Add(1)
	return f.BlockDevice.ReadAt(p, off)
}

// WriteAt implements BlockDevice with fault injection.
func (f *Faulty) WriteAt(p []byte, off int64) error {
	limit := f.failWriteAfter.Load()
	if limit >= 0 && f.writes.Load() >= limit {
		return fmt.Errorf("%w: write at %d", ErrInjected, off)
	}
	f.writes.Add(1)
	return f.BlockDevice.WriteAt(p, off)
}

// IOStats is a point-in-time snapshot of a device's operation and
// byte counters. Tests and benches take one before and one after a
// workload and diff them — e.g. to assert how many disk reads the RAM
// interval cache saved.
type IOStats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
}

// Sub returns the counter deltas since an earlier snapshot.
func (s IOStats) Sub(prev IOStats) IOStats {
	return IOStats{
		Reads:        s.Reads - prev.Reads,
		Writes:       s.Writes - prev.Writes,
		BytesRead:    s.BytesRead - prev.BytesRead,
		BytesWritten: s.BytesWritten - prev.BytesWritten,
	}
}

// A StatReader is a device that can report I/O counters. Counting
// implements it; wrappers that embed a counted device may forward it.
type StatReader interface {
	Stats() IOStats
}

// Counting wraps a device and tallies operations and bytes, used by the
// benchmarks to verify I/O patterns (e.g. that an IB-tree write is a
// single transfer) and by the cache tests to count reads saved.
type Counting struct {
	BlockDevice
	Reads, Writes           atomic.Int64
	BytesRead, BytesWritten atomic.Int64
}

// NewCounting wraps dev with I/O accounting.
func NewCounting(dev BlockDevice) *Counting {
	return &Counting{BlockDevice: dev}
}

// ReadAt implements BlockDevice with accounting.
func (c *Counting) ReadAt(p []byte, off int64) error {
	c.Reads.Add(1)
	c.BytesRead.Add(int64(len(p)))
	return c.BlockDevice.ReadAt(p, off)
}

// WriteAt implements BlockDevice with accounting.
func (c *Counting) WriteAt(p []byte, off int64) error {
	c.Writes.Add(1)
	c.BytesWritten.Add(int64(len(p)))
	return c.BlockDevice.WriteAt(p, off)
}

// Stats snapshots the counters (StatReader).
func (c *Counting) Stats() IOStats {
	return IOStats{
		Reads:        c.Reads.Load(),
		Writes:       c.Writes.Load(),
		BytesRead:    c.BytesRead.Load(),
		BytesWritten: c.BytesWritten.Load(),
	}
}

// Reset zeroes the counters, isolating the next measurement window.
func (c *Counting) Reset() {
	c.Reads.Store(0)
	c.Writes.Store(0)
	c.BytesRead.Store(0)
	c.BytesWritten.Store(0)
}
