package calliope

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIEndToEnd builds the real binaries and drives the full
// workflow the README documents: mkcontent formats a disk image and
// loads a movie, ffilter produces the fast-scan companions, the
// coordinator and msu processes come up, and calliope-client lists,
// checks status, and plays with VCR commands over stdin.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"./cmd/coordinator", "./cmd/msu", "./cmd/calliope-client",
		"./cmd/mkcontent", "./cmd/ffilter")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	work := t.TempDir()
	disk := filepath.Join(work, "disk0.img")

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Content: a 3-second movie plus fast companions (mkcontent -fast).
	out := run("mkcontent", "-disk", disk, "-format", "-disk-size", "33554432",
		"-name", "movie", "-kind", "mpeg1", "-duration", "3s", "-fast")
	if !strings.Contains(out, `loaded "movie"`) {
		t.Fatalf("mkcontent output:\n%s", out)
	}
	// Re-filter with a different interval via ffilter (overwrites are
	// rejected, so filter a second item).
	run("mkcontent", "-disk", disk, "-disk-size", "33554432",
		"-name", "short", "-kind", "mpeg1", "-duration", "1s")
	out = run("ffilter", "-disk", disk, "-disk-size", "33554432", "-name", "short", "-every", "10")
	if !strings.Contains(out, "companions short.ff and short.fb loaded") {
		t.Fatalf("ffilter output:\n%s", out)
	}
	out = run("mkcontent", "-disk", disk, "-disk-size", "33554432", "-list")
	for _, want := range []string{"movie", "movie.ff", "movie.fb", "short", "short.ff"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list missing %q:\n%s", want, out)
		}
	}

	// Servers.
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	coord := exec.Command(filepath.Join(bin, "coordinator"), "-addr", addr, "-quiet")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { coord.Process.Kill(); coord.Wait() }() //nolint:errcheck
	waitTCP(t, addr)

	msuProc := exec.Command(filepath.Join(bin, "msu"),
		"-id", "msu0", "-coordinator", addr, "-disk", disk,
		"-disk-size", "33554432", "-quiet")
	var msuOut bytes.Buffer
	msuProc.Stdout, msuProc.Stderr = &msuOut, &msuOut
	if err := msuProc.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { msuProc.Process.Kill(); msuProc.Wait() }() //nolint:errcheck

	// Client: wait until the MSU has registered.
	deadline := time.Now().Add(10 * time.Second)
	for {
		out = run("calliope-client", "-coordinator", addr, "status")
		if strings.Contains(out, "MSUs: 1 (1 available)") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("MSU never registered: %s\nmsu output: %s", out, msuOut.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	out = run("calliope-client", "-coordinator", addr, "list")
	if !strings.Contains(out, "movie") || !strings.Contains(out, "mpeg1") {
		t.Fatalf("client list:\n%s", out)
	}
	if strings.Contains(out, "movie.ff") {
		t.Fatalf("fast companions leaked into the table of contents:\n%s", out)
	}
	out = run("calliope-client", "-coordinator", addr, "types")
	if !strings.Contains(out, "seminar") || !strings.Contains(out, "rtp-video+vat-audio") {
		t.Fatalf("client types:\n%s", out)
	}

	// Play with VCR commands on stdin: let it run briefly, pause, ff,
	// quit. The client prints a final packet count.
	play := exec.Command(filepath.Join(bin, "calliope-client"), "-coordinator", addr, "play", "short")
	stdin, err := play.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var playOut bytes.Buffer
	play.Stdout, play.Stderr = &playOut, &playOut
	if err := play.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(500 * time.Millisecond)
		fmt.Fprintln(stdin, "pause")
		time.Sleep(100 * time.Millisecond)
		fmt.Fprintln(stdin, "play")
		time.Sleep(200 * time.Millisecond)
		fmt.Fprintln(stdin, "ff")
		time.Sleep(200 * time.Millisecond)
		fmt.Fprintln(stdin, "quit")
	}()
	done := make(chan error, 1)
	go func() { done <- play.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("play exited badly: %v\n%s", err, playOut.String())
		}
	case <-time.After(20 * time.Second):
		play.Process.Kill() //nolint:errcheck
		t.Fatalf("play wedged:\n%s", playOut.String())
	}
	if !strings.Contains(playOut.String(), "stopped:") {
		t.Fatalf("play output:\n%s", playOut.String())
	}

	// Delete through the CLI.
	out = run("calliope-client", "-coordinator", addr, "delete", "short")
	if !strings.Contains(out, `deleted "short"`) {
		t.Fatalf("delete output:\n%s", out)
	}
	out = run("calliope-client", "-coordinator", addr, "list")
	if strings.Contains(out, "short") {
		t.Fatalf("short survived deletion:\n%s", out)
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
