package calliope

import (
	"net"
	"testing"
	"time"

	"calliope/internal/blockdev"
	"calliope/internal/coordinator"
	"calliope/internal/msu"
	"calliope/internal/msufs"
	"calliope/internal/units"
)

// TestStripedServing plays and records against an MSU that stripes
// content across three disks (§2.3.3's alternative layout): the
// Coordinator sees one logical disk with 3x bandwidth, and the data
// path runs unchanged over the striped files.
func TestStripedServing(t *testing.T) {
	pkts := shortMovie(t, 2*time.Second)
	cluster, err := StartCluster(ClusterConfig{
		DisksPerMSU:   3,
		Striped:       true,
		BlockSize:     64 * 1024,
		DiskBandwidth: 1500 * units.Kbps, // per member disk; 4.5 Mbit/s aggregate
		PreloadStriped: func(m int, store msufs.Store) error {
			return IngestStore(store, "movie", "mpeg1", pkts)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Each member volume must hold a share of the file.
	for d := 0; d < 3; d++ {
		vol := cluster.Volume(0, d)
		st, err := vol.Stat("movie")
		if err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
		if st.Blocks == 0 {
			t.Fatalf("disk %d holds no blocks of the striped file", d)
		}
	}

	c, err := Dial(cluster.Addr(), "stripe-user")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	items, err := c.ListContent()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Name != "movie" {
		t.Fatalf("contents = %+v", items)
	}

	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.SetCapture(true)
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}

	// The aggregate budget admits three 1.5 Mbit/s streams on the one
	// logical disk — impossible in the unstriped layout where the
	// content's single disk caps at one.
	var streams []*Stream
	for i := 0; i < 3; i++ {
		s, err := c.Play("movie", "tv", false)
		if err != nil {
			t.Fatalf("striped play %d: %v", i, err)
		}
		streams = append(streams, s)
	}
	if _, err := c.Play("movie", "tv", false); err == nil {
		t.Fatal("fourth stream exceeded aggregate bandwidth but was admitted")
	}
	// First stream delivers correct data.
	src := shortMovie(t, 2*time.Second)
	if !recv.WaitCount(len(src), 15*time.Second) {
		t.Fatalf("received %d of %d packets (x3 streams share the receiver)", recv.Count(), len(src))
	}
	// Seek works across the stripe.
	if _, err := streams[0].Seek(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, s := range streams {
		s.Quit() //nolint:errcheck
	}
}

// TestFastBackwardWalksBackwards verifies the fast-backward companion:
// position decreases, frames arrive in reverse order, and playback
// ends at position zero.
func TestFastBackwardWalksBackwards(t *testing.T) {
	cluster := movieCluster(t, 3*time.Second)
	c, err := Dial(cluster.Addr(), "rewinder")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.SetCapture(true)
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Quit() //nolint:errcheck

	// Jump near the end, then rewind.
	if _, err := stream.Seek(2900 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := recv.Count()
	ack, err := stream.FastBackward()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Speed != "fast-backward" {
		t.Fatalf("speed = %q", ack.Speed)
	}
	// The 3s movie at 15x backward lasts 200ms; EOF lands at pos 0.
	select {
	case eof := <-stream.EOF():
		if eof.Pos != 0 {
			t.Fatalf("fast-backward ended at %v, want 0", eof.Pos)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no EOF in fast-backward")
	}
	// Fresh packets arrived and their source frames run backwards.
	pkts := recv.Packets()[before:]
	if len(pkts) == 0 {
		t.Fatal("no packets during fast-backward")
	}
}

// TestClientDisconnectTerminatesStreams: killing the client's control
// connection makes the MSU end the group and the Coordinator reclaim
// the bandwidth — the failure path of §2.2.
func TestClientDisconnectTerminatesStreams(t *testing.T) {
	cluster := movieCluster(t, 10*time.Second)
	c, err := Dial(cluster.Addr(), "vanisher")
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Play("movie", "tv", false); err != nil {
		t.Fatal(err)
	}
	if !recv.WaitCount(3, 5*time.Second) {
		t.Fatal("stream never started")
	}
	// The client vanishes without a quit.
	c.Close()

	watcher, err := Dial(cluster.Addr(), "watcher")
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	if err := watcher.WaitStreamsIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Delivery stops shortly after.
	n := recv.Count()
	time.Sleep(300 * time.Millisecond)
	if after := recv.Count(); after > n+3 {
		t.Fatalf("packets still flowing after client death: %d → %d", n, after)
	}
}

// TestMSUKilledMidStream: the client's control connection drops and
// the Coordinator releases the stream when its MSU dies mid-delivery.
func TestMSUKilledMidStream(t *testing.T) {
	cluster := movieCluster(t, 10*time.Second)
	c, err := Dial(cluster.Addr(), "unlucky")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	if !recv.WaitCount(3, 5*time.Second) {
		t.Fatal("stream never started")
	}
	cluster.MSUs[0].Close()
	select {
	case <-stream.Down():
	case <-time.After(5 * time.Second):
		t.Fatal("client never noticed the dead MSU")
	}
	if err := c.WaitStreamsIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestVCROnRecordingRejected: pause/seek/fast-scan are playback
// operations; recordings only accept quit.
func TestVCROnRecordingRejected(t *testing.T) {
	cluster := movieCluster(t, time.Second)
	c, err := Dial(cluster.Addr(), "recorder")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("cam", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Record("attempt", "mpeg1", "cam", time.Minute, false)
	if err != nil {
		t.Fatal(err)
	}
	// Drive VCR ops through the recording's control connection by
	// casting the handle... the public API has no Pause on Recording,
	// which is itself the guarantee; stop cleanly.
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestSeekClamping: seeks beyond the end clamp to the end (EOF
// follows), negative seeks clamp to zero.
func TestSeekClamping(t *testing.T) {
	cluster := movieCluster(t, 2*time.Second)
	c, err := Dial(cluster.Addr(), "clamper")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Quit() //nolint:errcheck
	if _, err := stream.Seek(time.Hour); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stream.EOF():
	case <-time.After(5 * time.Second):
		t.Fatal("seek past end did not reach EOF")
	}
	ack, err := stream.Seek(-5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Pos != 0 {
		t.Fatalf("negative seek landed at %v", ack.Pos)
	}
	if !recv.WaitCount(recv.Count()+3, 5*time.Second) {
		t.Fatal("no packets after seek to start")
	}
}

// TestDiskFaultDuringPlayback: injected read faults surface as a clean
// end of the stream (the group stays controllable) rather than a hang
// or crash.
func TestDiskFaultDuringPlayback(t *testing.T) {
	pkts := shortMovie(t, 5*time.Second)
	dev, err := blockdev.NewMem(64 * int64(units.MB))
	if err != nil {
		t.Fatal(err)
	}
	faulty := blockdev.NewFaulty(dev)
	vol, err := msufs.Format(faulty, msufs.Options{BlockSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := Ingest(vol, "movie", "mpeg1", pkts); err != nil {
		t.Fatal(err)
	}

	// Hand-build the cluster around the faulty volume.
	cluster, err := StartCluster(ClusterConfig{BlockSize: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	// Replace msu0 with one backed by the faulty volume.
	cluster.MSUs[0].Close()
	m2, err := newFaultyMSU(cluster, vol)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	c, err := Dial(cluster.Addr(), "fault-user")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.WaitForContent("movie", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	if !recv.WaitCount(3, 5*time.Second) {
		t.Fatal("stream never started")
	}
	// Arm the fault: the next page read fails; the player reports EOF
	// instead of wedging, and the group still answers VCR commands.
	faulty.FailReadsAfter(0)
	select {
	case <-stream.EOF():
	case <-time.After(10 * time.Second):
		t.Fatal("stream wedged on disk fault")
	}
	if err := stream.Quit(); err != nil {
		t.Fatalf("group unresponsive after fault: %v", err)
	}
}

// newFaultyMSU registers a replacement MSU serving the given volume.
func newFaultyMSU(cluster *Cluster, vol *msufs.Volume) (*msu.MSU, error) {
	m, err := msu.New(msu.Config{
		ID:          "msu0",
		Coordinator: cluster.Addr(),
		Volumes:     []*msufs.Volume{vol},
	})
	if err != nil {
		return nil, err
	}
	if err := m.Start(); err != nil {
		return nil, err
	}
	return m, nil
}

// TestPlaybackPacing: real-MSU delivery tracks the content's schedule.
// A 2-second CBR stream must arrive spread over roughly 2 seconds with
// inter-arrival gaps near the 16.7 ms frame interval — never as a
// burst. Bounds are generous to survive loaded CI machines.
func TestPlaybackPacing(t *testing.T) {
	cluster := movieCluster(t, 2*time.Second)
	c, err := Dial(cluster.Addr(), "pacer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Quit() //nolint:errcheck
	select {
	case <-stream.EOF():
	case <-time.After(15 * time.Second):
		t.Fatal("no EOF")
	}
	span := recv.Span()
	if span < 1500*time.Millisecond {
		t.Fatalf("2s stream delivered in %v — burst, not paced", span)
	}
	if span > 4*time.Second {
		t.Fatalf("2s stream took %v — stalled", span)
	}
	// No single gap should approach a whole second.
	pkts := recv.Packets()
	var worst time.Duration
	for i := 1; i < len(pkts); i++ {
		if gap := pkts[i].At.Sub(pkts[i-1].At); gap > worst {
			worst = gap
		}
	}
	if worst > 700*time.Millisecond {
		t.Fatalf("worst inter-arrival gap %v", worst)
	}
}

// TestJitterBufferAgainstRealDelivery plugs the §2.2.1 client buffer
// onto a real stream: with one second of smoothing (well under the
// paper's 200 KB at this rate), every packet presents on time.
func TestJitterBufferAgainstRealDelivery(t *testing.T) {
	cluster := movieCluster(t, 2*time.Second)
	c, err := Dial(cluster.Addr(), "buffered")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Quit() //nolint:errcheck
	select {
	case <-stream.EOF():
	case <-time.After(15 * time.Second):
		t.Fatal("no EOF")
	}

	// Feed arrivals into the buffer. The sender's schedule position is
	// reconstructed from the CBR cadence (packet i due at i*interval).
	src := shortMovie(t, 2*time.Second)
	pkts := recv.Packets()
	// UDP may drop the odd datagram on a loaded host; a lost packet
	// only shifts later schedule positions earlier, which the buffer
	// absorbs.
	if len(pkts) < len(src)*99/100 {
		t.Fatalf("received %d of %d", len(pkts), len(src))
	}
	jb, err := NewJitterBuffer(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pkts {
		jb.Admit(src[i].Time, p.At, p.Size)
		jb.Drain(p.At)
	}
	jb.Drain(pkts[len(pkts)-1].At.Add(2 * time.Second))
	if jb.Underruns() != 0 {
		t.Fatalf("%d underruns with a 1s buffer", jb.Underruns())
	}
	if jb.Presented() != len(pkts) {
		t.Fatalf("presented %d of %d", jb.Presented(), len(pkts))
	}
	// The paper's sizing: the buffer depth stays under 200 KB.
	if hwm := jb.HighWaterMark(); hwm > 200_000 {
		t.Fatalf("high-water mark %d bytes exceeds the paper's 200 KB", hwm)
	}
}

// TestAuthenticationEndToEnd exercises the customer database: unknown
// users are refused at hello, viewers play but cannot administrate,
// admins can delete.
func TestAuthenticationEndToEnd(t *testing.T) {
	pkts := shortMovie(t, time.Second)
	cluster, err := StartCluster(ClusterConfig{
		BlockSize: 64 * 1024,
		Users: map[string]coordinator.Role{
			"operator": RoleAdmin,
			"patron":   RoleViewer,
		},
		Preload: func(m, d int, vol *msufs.Volume) error {
			return Ingest(vol, "movie", "mpeg1", pkts)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if _, err := Dial(cluster.Addr(), "stranger"); err == nil {
		t.Fatal("unknown user admitted")
	}

	patron, err := Dial(cluster.Addr(), "patron")
	if err != nil {
		t.Fatal(err)
	}
	defer patron.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := patron.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := patron.Play("movie", "tv", false)
	if err != nil {
		t.Fatalf("viewer cannot play: %v", err)
	}
	if !recv.WaitCount(3, 5*time.Second) {
		t.Fatal("no delivery")
	}
	if err := stream.Quit(); err != nil {
		t.Fatal(err)
	}
	if err := patron.DeleteContent("movie"); err == nil {
		t.Fatal("viewer deleted content")
	}

	op, err := Dial(cluster.Addr(), "operator")
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	if err := op.WaitStreamsIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := op.DeleteContent("movie"); err != nil {
		t.Fatalf("admin delete failed: %v", err)
	}
}

// TestStripedRecording records through a striped MSU: the recording's
// blocks land across all member disks and play back intact.
func TestStripedRecording(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		DisksPerMSU: 3,
		Striped:     true,
		BlockSize:   64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, err := Dial(cluster.Addr(), "stripe-rec")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("cam", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Record("take", "mpeg1", "cam", time.Minute, false)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := rec.Sink("mpeg1")
	conn, err := net.Dial("udp", data)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Push enough data to span several 64 KB stripes: 300 × 1 KB.
	var sent [][]byte
	for i := 0; i < 300; i++ {
		pkt := make([]byte, 1024)
		pkt[0], pkt[1] = byte(i), byte(i>>8)
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		sent = append(sent, pkt)
		time.Sleep(300 * time.Microsecond)
	}
	time.Sleep(300 * time.Millisecond)
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitForContent("take", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Blocks spread across member volumes.
	spread := 0
	for d := 0; d < 3; d++ {
		if st, err := cluster.Volume(0, d).Stat("take"); err == nil && st.Blocks > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("recording striped across only %d volumes", spread)
	}
	// Playback returns the exact bytes.
	play, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer play.Close()
	play.SetCapture(true)
	if err := c.RegisterPort("tv", "mpeg1", play.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("take", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Quit() //nolint:errcheck
	select {
	case <-stream.EOF():
	case <-time.After(15 * time.Second):
		t.Fatal("no EOF")
	}
	play.WaitCount(len(sent), 2*time.Second) // bounded drain of the sink
	got := play.Packets()
	if len(got) != len(sent) {
		t.Fatalf("replayed %d of %d packets", len(got), len(sent))
	}
	for i := range got {
		if string(got[i].Payload) != string(sent[i]) {
			t.Fatalf("packet %d differs", i)
		}
	}
}
