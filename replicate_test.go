package calliope

// Integration tests for demand-driven content replication (DESIGN.md
// §3h): a queued play that no replica can serve drives the Coordinator
// to copy the content MSU-to-MSU over idle bandwidth, the queued play
// is admitted on the new replica, and deletes or MSU crashes mid-copy
// leave no partial replica behind.

import (
	"net"
	"testing"
	"time"

	"calliope/internal/coordinator"
	"calliope/internal/core"
	"calliope/internal/faultinject"
	"calliope/internal/msufs"
	"calliope/internal/units"
	"calliope/internal/wire"
)

const (
	hogDur   = 8 * time.Second
	movieDur = 2 * time.Second
)

// replCluster starts two MSUs where only msu0 holds content: "hog" (a
// long title used to soak its disk) and "movie" (the title under
// test). The disk budget is 4000 Kbps, so two 1500 Kbps hog plays
// leave 1000 Kbps idle — too little to admit a third mpeg1 stream,
// comfortably above the replication floor. A queued "movie" play then
// forces the Coordinator to replicate it onto the empty msu1 over the
// leftover bandwidth. Caching is disabled so plays stay disk-bound and
// the ledger arithmetic is exact.
func replCluster(t *testing.T, repl coordinator.ReplicationConfig, queueTimeout time.Duration, stateDir string, inj []*faultinject.Injector) *Cluster {
	t.Helper()
	hog := shortMovie(t, hogDur)
	movie := shortMovie(t, movieDur)
	cfg := ClusterConfig{
		MSUs:          2,
		BlockSize:     64 * 1024,
		DiskBandwidth: 4000 * units.Kbps,
		NetBandwidth:  20 * units.Mbps,
		CacheBytes:    -1,
		QueueTimeout:  queueTimeout,
		StateDir:      stateDir,
		Replication:   repl,
		Preload: func(m, d int, vol *msufs.Volume) error {
			if m != 0 {
				return nil
			}
			if err := Ingest(vol, "hog", "mpeg1", hog); err != nil {
				return err
			}
			return Ingest(vol, "movie", "mpeg1", movie)
		},
	}
	if inj != nil {
		cfg.MSUDial = func(i int) func(network, address string) (net.Conn, error) {
			return inj[i].Dial(nil)
		}
		cfg.MSUListen = func(i int) func(network, address string) (net.Listener, error) {
			return func(network, address string) (net.Listener, error) {
				ln, err := net.Listen(network, address)
				if err != nil {
					return nil, err
				}
				return inj[i].Listener(ln), nil
			}
		}
	}
	cluster, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster
}

// saturate pins 3000 of msu0's 4000 Kbps disk budget with two hog
// plays and returns their streams.
func saturate(t *testing.T, c *Client) [2]*Stream {
	t.Helper()
	var streams [2]*Stream
	for i, port := range []string{"hog0", "hog1"} {
		recv, err := NewReceiver("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { recv.Close() })
		if err := c.RegisterPort(port, "mpeg1", recv.Addr(), ""); err != nil {
			t.Fatal(err)
		}
		s, err := c.Play("hog", port, false)
		if err != nil {
			t.Fatalf("hog play %d: %v", i, err)
		}
		if s.Info().MSU != "msu0" {
			t.Fatalf("hog play %d placed on %q, want msu0", i, s.Info().MSU)
		}
		streams[i] = s
	}
	return streams
}

// waitRepl polls the Coordinator status until pred holds.
func waitRepl(t *testing.T, c *Client, what string, timeout time.Duration, pred func(wire.Status) bool) wire.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st wire.Status
	for {
		var err error
		st, err = c.Status()
		if err == nil && pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: never happened (last status err %v, repl %+v)", what, err, st.Repl)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitCond polls an arbitrary condition.
func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: never happened", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// findContent returns the table-of-contents entry for name, or fails.
func findContent(t *testing.T, c *Client, name string) ContentInfo {
	t.Helper()
	items, err := c.ListContent()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Name == name {
			return it
		}
	}
	t.Fatalf("content %q not in table of contents (%d items)", name, len(items))
	return ContentInfo{}
}

// TestReplicateHotContentUnderLoad: two hog streams soak msu0's disk;
// a queued movie play cannot be admitted anywhere, so the Coordinator
// copies movie onto the idle msu1 at the leftover bandwidth, the
// queued play lands on the new replica, and the hogs keep their
// natural delivery pace while the copy runs.
func TestReplicateHotContentUnderLoad(t *testing.T) {
	cluster := replCluster(t, coordinator.ReplicationConfig{}, 0, "", nil)
	admin, err := Dial(cluster.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	hogStart := time.Now()
	hogs := saturate(t, admin)

	// The queued play runs on its own session: a Wait-play blocks its
	// connection until admitted.
	viewer, err := Dial(cluster.Addr(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := viewer.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	queued := time.Now()
	stream, err := viewer.Play("movie", "tv", true)
	if err != nil {
		t.Fatalf("queued movie play: %v", err)
	}
	if got := stream.Info().MSU; got != "msu1" {
		t.Fatalf("queued play admitted on %q, want the fresh replica on msu1", got)
	}
	if waited := time.Since(queued); waited < time.Second {
		t.Errorf("movie admitted after only %v — it never waited for the copy", waited)
	}

	// The whole movie arrives from the replica.
	select {
	case <-stream.EOF():
	case <-time.After(15 * time.Second):
		t.Fatal("no EOF from the replicated movie within 15s")
	}
	if want := len(shortMovie(t, movieDur)); !recv.WaitCount(want, 3*time.Second) {
		t.Errorf("replica delivered %d packets, want %d", recv.Count(), want)
	}

	st := waitRepl(t, admin, "transfer completion counted", 5*time.Second, func(st wire.Status) bool {
		return st.Repl.Completed >= 1
	})
	if st.Repl.BytesCopied == 0 {
		t.Errorf("repl stats count no copied bytes: %+v", st.Repl)
	}
	info := findContent(t, admin, "movie")
	if len(info.Replicas) != 2 {
		t.Fatalf("movie replicas = %v, want 2 locations", info.Replicas)
	}
	want := map[core.DiskID]bool{
		{MSU: "msu0", N: 0}: true,
		{MSU: "msu1", N: 0}: true,
	}
	for _, d := range info.Replicas {
		if !want[d] {
			t.Errorf("unexpected replica location %v", d)
		}
	}

	// The live hogs were never stalled by the background copy: they
	// reach EOF at their natural pace.
	for i, h := range hogs {
		select {
		case <-h.EOF():
		case <-time.After(hogDur + 12*time.Second):
			t.Fatalf("hog %d never reached EOF — the copy starved live delivery", i)
		}
	}
	elapsed := time.Since(hogStart)
	if elapsed < hogDur-1500*time.Millisecond {
		t.Errorf("%v hogs finished in %v — not paced", hogDur, elapsed)
	}
	if elapsed > hogDur+6*time.Second {
		t.Errorf("%v hogs took %v — the copy stalled live delivery", hogDur, elapsed)
	}
}

// TestReplicateDeleteRaceAbortsCopy: deleting content while its copy
// is in flight aborts the transfer, frees the destination's partial
// blocks, and never commits a location record — not even across a
// Coordinator crash-restart.
func TestReplicateDeleteRaceAbortsCopy(t *testing.T) {
	// 256 Kbps stretches the 375 KB copy to ~12 s so the delete
	// reliably lands mid-transfer.
	cluster := replCluster(t, coordinator.ReplicationConfig{Rate: 256 * units.Kbps},
		15*time.Second, t.TempDir(), nil)
	free0 := cluster.Volume(1, 0).FreeBlocks()
	admin, err := Dial(cluster.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	saturate(t, admin)

	viewer, err := Dial(cluster.Addr(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := viewer.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := viewer.Play("movie", "tv", true)
		errCh <- err
	}()

	waitRepl(t, admin, "copy in flight", 10*time.Second, func(st wire.Status) bool {
		return st.Repl.Active >= 1
	})
	waitCond(t, "destination allocated partial blocks", 10*time.Second, func() bool {
		return cluster.Volume(1, 0).FreeBlocks() < free0
	})

	if err := admin.DeleteContent("movie"); err != nil {
		t.Fatalf("delete during copy: %v", err)
	}

	// The queued play fails (its content is gone), the transfer aborts,
	// and the destination reclaims every partial block.
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("queued play of deleted content was admitted")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("queued play never resolved after the delete")
	}
	waitRepl(t, admin, "transfer aborted", 10*time.Second, func(st wire.Status) bool {
		return st.Repl.Active == 0 && st.Repl.Aborted >= 1
	})
	waitCond(t, "partial replica reclaimed on the destination", 10*time.Second, func() bool {
		return cluster.Volume(1, 0).FreeBlocks() == free0
	})

	items, err := admin.ListContent()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Name == "movie" {
			t.Fatalf("deleted movie still listed: %+v", it)
		}
	}

	// Crash-restart: the journal must never have seen a location for
	// the aborted copy.
	if err := cluster.RestartCoordinator(); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, admin)
	items, err = admin.ListContent()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Name == "movie" {
			t.Fatalf("restarted Coordinator resurrected deleted movie: %+v", it)
		}
	}
}

// replicateCrashTest drives a copy mid-flight, crashes the MSU picked
// by victim, and asserts the invariant shared by both crash
// directions: the transfer aborts, the destination's partial blocks
// are reclaimed, and after a Coordinator crash-restart the catalog
// shows exactly the original replica — no orphaned location record.
func replicateCrashTest(t *testing.T, victim int) (*Cluster, []*faultinject.Injector, *Client) {
	t.Helper()
	inj := []*faultinject.Injector{
		faultinject.New(faultinject.Options{}),
		faultinject.New(faultinject.Options{}),
	}
	cluster := replCluster(t, coordinator.ReplicationConfig{Rate: 256 * units.Kbps},
		5*time.Second, t.TempDir(), inj)
	free0 := cluster.Volume(1, 0).FreeBlocks()
	admin, err := Dial(cluster.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })
	saturate(t, admin)

	viewer, err := Dial(cluster.Addr(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { viewer.Close() })
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	if err := viewer.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := viewer.Play("movie", "tv", true)
		errCh <- err
	}()

	waitRepl(t, admin, "copy in flight", 10*time.Second, func(st wire.Status) bool {
		return st.Repl.Active >= 1
	})
	waitCond(t, "destination allocated partial blocks", 10*time.Second, func() bool {
		return cluster.Volume(1, 0).FreeBlocks() < free0
	})

	crash(inj[victim])

	// The Coordinator notices the dead MSU and aborts the transfer; the
	// destination (told to abort, or alone with its failing pulls)
	// reclaims the partial replica on its own.
	waitRepl(t, admin, "transfer aborted after crash", 15*time.Second, func(st wire.Status) bool {
		return st.Repl.Active == 0 && st.Repl.Aborted >= 1
	})
	waitCond(t, "partial replica reclaimed on the destination", 15*time.Second, func() bool {
		return cluster.Volume(1, 0).FreeBlocks() == free0
	})
	// The queued play resolves with an error: the copy never committed,
	// so no second replica exists to admit it.
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("queued play admitted although the copy crashed")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("queued play never resolved after the crash")
	}

	// Crash-restart the Coordinator: the recovered catalog shows only
	// the original copy — the half-finished replica left no record.
	if err := cluster.RestartCoordinator(); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, admin)
	info := findContent(t, admin, "movie")
	if len(info.Replicas) != 1 || info.Replicas[0] != (core.DiskID{MSU: "msu0", N: 0}) {
		t.Fatalf("after restart movie replicas = %v, want exactly [msu0/disk0]", info.Replicas)
	}
	return cluster, inj, admin
}

// TestFaultReplicateSourceCrashMidCopy: the source MSU dies while
// serving a copy. Partition semantics cover inbound too, so the
// destination's resume dials fail and it discards the partial replica.
// After the source returns, playback of the surviving copy works.
func TestFaultReplicateSourceCrashMidCopy(t *testing.T) {
	cluster, inj, admin := replicateCrashTest(t, 0)

	inj[0].Partition(false)
	waitMSUsAvailable(t, admin, 2)
	info := findContent(t, admin, "movie")
	if len(info.Replicas) != 1 {
		t.Fatalf("healed source re-registered with ghost replicas: %v", info.Replicas)
	}
	playMovieAfterRecovery(t, cluster)
}

// TestFaultReplicateDestMSUCrashMidCopy: the destination MSU dies
// while pulling a copy. Its retries fail through the partition, it
// discards the partial blocks itself, and when it re-registers it
// declares nothing — the partial never became content.
func TestFaultReplicateDestMSUCrashMidCopy(t *testing.T) {
	cluster, inj, admin := replicateCrashTest(t, 1)

	inj[1].Partition(false)
	waitMSUsAvailable(t, admin, 2)
	info := findContent(t, admin, "movie")
	if len(info.Replicas) != 1 || info.Replicas[0] != (core.DiskID{MSU: "msu0", N: 0}) {
		t.Fatalf("healed destination re-registered a partial replica: %v", info.Replicas)
	}
	playMovieAfterRecovery(t, cluster)
}

// playMovieAfterRecovery waits out the hog load and plays movie on a
// fresh session, proving the cluster still serves the surviving copy.
func playMovieAfterRecovery(t *testing.T, cluster *Cluster) {
	t.Helper()
	c, err := Dial(cluster.Addr(), "carol")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	// The hogs from the load phase may still hold bandwidth (they run
	// hogDur from test start); retry until the play is admitted.
	deadline := time.Now().Add(hogDur + 15*time.Second)
	var stream *Stream
	for {
		stream, err = c.Play("movie", "tv", false)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("movie never admitted after recovery: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !recv.WaitCount(3, 10*time.Second) {
		t.Fatal("no packets from the recovered cluster")
	}
	if err := stream.Quit(); err != nil {
		t.Fatal(err)
	}
}
