package calliope_test

import (
	"testing"

	"calliope/internal/leakcheck"
)

// TestMain fails the integration suite if any end-to-end test leaves
// a goroutine running: every Coordinator, MSU, and client spun up by
// a scenario must be fully shut down on teardown.
func TestMain(m *testing.M) { leakcheck.Main(m) }
