package calliope

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"calliope/internal/obs"
)

// TestObservabilityLifecycle drives a full play → MSU crash → migrate
// → EOF life through a 2-MSU cluster and then scrapes the
// Coordinator's HTTP endpoint: /metrics must expose non-zero admission
// and delivery counters (the latter arrive as MSU deltas piggybacked
// on cache reports), and /events must carry the stream's admit,
// dispatch, migrate and EOF entries in order.
func TestObservabilityLifecycle(t *testing.T) {
	cluster, inj := faultCluster(t, 2, 2*time.Second, 0, "")
	c, err := Dial(cluster.Addr(), "olive")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	if !recv.WaitCount(3, 5*time.Second) {
		t.Fatal("stream never started")
	}

	crash(inj[0])
	select {
	case <-stream.Migrated():
	case l := <-stream.Lost():
		t.Fatalf("stream lost (%q) with a live replica available", l.Reason)
	case <-time.After(10 * time.Second):
		t.Fatal("no migration after MSU crash")
	}
	select {
	case <-stream.EOF():
	case <-time.After(15 * time.Second):
		t.Fatal("no EOF after migration")
	}
	stream.Quit() //nolint:errcheck // the group may already be torn down at EOF

	srv := httptest.NewServer(cluster.Coordinator.HTTPHandler())
	defer srv.Close()

	// Delivery counters reach the Coordinator asynchronously (deltas
	// ride the surviving MSU's cache reports, and the EOF triggers
	// one), so poll the scrape until they are both visible.
	metricRe := regexp.MustCompile(`(?m)^calliope_(\w+) (\d+)$`)
	var metrics map[string]int64
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := httpGet(t, srv.URL+"/metrics")
		metrics = make(map[string]int64)
		for _, m := range metricRe.FindAllStringSubmatch(body, -1) {
			v, _ := strconv.ParseInt(m[2], 10, 64)
			metrics[m[1]] = v
		}
		if metrics["admission_admitted_total"] > 0 && metrics["delivery_packets_total"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never showed admission+delivery: %v", metrics)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, name := range []string{"dispatch_total", "migrations_total", "delivery_bytes_total", "streams_ended_total"} {
		if metrics[name] <= 0 {
			t.Errorf("%s = %d, want > 0", name, metrics[name])
		}
	}

	// The stream's timeline: admitted, dispatched, migrated, ended —
	// in sequence order.
	streamID := uint64(stream.Info().Streams[0].Stream)
	var page obs.EventsPage
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/events?stream="+strconv.FormatUint(streamID, 10))), &page); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	last := uint64(0)
	for _, ev := range page.Events {
		if ev.Seq <= last {
			t.Fatalf("timeline out of order: %+v", page.Events)
		}
		last = ev.Seq
		kinds = append(kinds, ev.Kind)
	}
	want := []string{obs.EvDispatch, obs.EvMigrate, obs.EvEOF}
	for _, k := range want {
		found := false
		for _, got := range kinds {
			if got == k {
				found = true
			}
		}
		if !found {
			t.Errorf("stream %d timeline missing %q: %v", streamID, k, kinds)
		}
	}

	// The unfiltered timeline also carries the session-level admit.
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/events")), &page); err != nil {
		t.Fatal(err)
	}
	admits := 0
	for _, ev := range page.Events {
		if ev.Kind == obs.EvAdmit {
			admits++
		}
	}
	if admits == 0 {
		t.Errorf("no admit events on the timeline")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(body)
}
