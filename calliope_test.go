package calliope

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"calliope/internal/media"
	"calliope/internal/msufs"
	"calliope/internal/protocol"
	"calliope/internal/units"
	"calliope/internal/wire"
)

// shortMovie builds a small CBR stream: ~2 s of "video" in 1 KB
// packets at 1.5 Mbit/s — long enough to watch pacing, short enough
// for tests.
func shortMovie(t *testing.T, dur time.Duration) []Packet {
	t.Helper()
	pkts, err := media.GenerateCBR(media.CBRConfig{
		Rate:       1500 * units.Kbps,
		PacketSize: 1024,
		FPS:        30,
		GOP:        15,
		Duration:   dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

// movieCluster starts a 1-MSU cluster preloaded with "movie" and its
// fast-scan companions.
func movieCluster(t *testing.T, dur time.Duration) *Cluster {
	t.Helper()
	pkts := shortMovie(t, dur)
	cluster, err := StartCluster(ClusterConfig{
		BlockSize: 64 * 1024,
		Preload: func(m, d int, vol *msufs.Volume) error {
			if err := Ingest(vol, "movie", "mpeg1", pkts); err != nil {
				return err
			}
			return IngestFast(vol, "movie", "mpeg1", pkts, 15)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster
}

func TestPlayEndToEnd(t *testing.T) {
	cluster := movieCluster(t, 2*time.Second)
	src := shortMovie(t, 2*time.Second)

	c, err := Dial(cluster.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	items, err := c.ListContent()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Name != "movie" || items[0].Type != "mpeg1" || !items[0].HasFast {
		t.Fatalf("table of contents = %+v", items)
	}
	if items[0].Length < 1900*time.Millisecond {
		t.Fatalf("content length = %v", items[0].Length)
	}

	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.SetCapture(true)
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Length() < 1900*time.Millisecond {
		t.Fatalf("stream length = %v", stream.Length())
	}

	// Wait for EOF.
	select {
	case <-stream.EOF():
	case <-time.After(15 * time.Second):
		t.Fatal("no EOF within 15s")
	}
	elapsed := time.Since(start)
	// On a loaded host the receiver goroutine can trail the socket
	// buffer at EOF; give it a bounded moment to drain.
	recv.WaitCount(len(src), 2*time.Second)

	// All packets arrived, in order, with the original payloads.
	got := recv.Packets()
	if len(got) != len(src) {
		t.Fatalf("received %d packets, want %d", len(got), len(src))
	}
	for i := range got {
		if string(got[i].Payload) != string(src[i].Payload) {
			t.Fatalf("packet %d payload mismatch", i)
		}
	}
	// Real-time pacing: the 2s stream takes ~2s, not instantaneous.
	if elapsed < 1500*time.Millisecond {
		t.Errorf("2s stream delivered in %v — not paced", elapsed)
	}
	if elapsed > 6*time.Second {
		t.Errorf("2s stream took %v — stalled", elapsed)
	}

	if err := stream.Quit(); err != nil {
		t.Fatal(err)
	}
	// The Coordinator frees the stream.
	deadline := time.Now().Add(3 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.ActiveStreams == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams still active: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestVCRPauseResumeSeek(t *testing.T) {
	cluster := movieCluster(t, 3*time.Second)
	c, err := Dial(cluster.Addr(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Quit() //nolint:errcheck

	if !recv.WaitCount(10, 5*time.Second) {
		t.Fatal("no packets before pause")
	}
	ack, err := stream.Pause()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Pos <= 0 || ack.Pos > 3*time.Second {
		t.Fatalf("pause position %v", ack.Pos)
	}
	// While paused, delivery stops.
	n1 := recv.Count()
	time.Sleep(300 * time.Millisecond)
	n2 := recv.Count()
	if n2 > n1+2 { // allow in-flight straggler
		t.Fatalf("packets kept flowing while paused: %d → %d", n1, n2)
	}

	if _, err := stream.Resume(); err != nil {
		t.Fatal(err)
	}
	if !recv.WaitCount(n2+10, 5*time.Second) {
		t.Fatal("no packets after resume")
	}

	// Seek near the end; EOF should follow quickly.
	if _, err := stream.Seek(2900 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	select {
	case eof := <-stream.EOF():
		if eof.Pos < 2500*time.Millisecond {
			t.Fatalf("EOF at %v after seek to 2.9s", eof.Pos)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no EOF after seek near end")
	}
}

func TestFastForwardUsesCompanionFile(t *testing.T) {
	cluster := movieCluster(t, 3*time.Second)
	c, err := Dial(cluster.Addr(), "carol")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.SetCapture(true)
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Quit() //nolint:errcheck

	if !recv.WaitCount(5, 5*time.Second) {
		t.Fatal("no packets at normal rate")
	}
	ack, err := stream.FastForward()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Speed != "fast-forward" {
		t.Fatalf("speed = %q", ack.Speed)
	}
	// The 3s movie at 15x lasts 200ms in the fast file: EOF arrives
	// promptly and position advances to the end.
	select {
	case <-stream.EOF():
	case <-time.After(5 * time.Second):
		t.Fatal("no EOF in fast-forward")
	}
	// The fast-forward file carries only I-frames.
	sawI := 0
	for _, p := range recv.Packets() {
		h, err := media.ParseHeader(p.Payload)
		if err == nil && h.Type == media.IFrame {
			sawI++
		}
	}
	if sawI == 0 {
		t.Fatal("no I-frame packets seen in fast-forward")
	}

	// Back to normal play: position maps back into the normal file.
	ack, err = stream.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Speed != "normal" {
		t.Fatalf("speed after resume = %q", ack.Speed)
	}
}

func TestRecordThenPlayRTP(t *testing.T) {
	cluster := movieCluster(t, time.Second)
	c, err := Dial(cluster.Addr(), "dave")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	recv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.SetCapture(true)
	if err := c.RegisterPort("cam", "rtp-video", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}

	rec, err := c.Record("talk", "rtp-video", "cam", 30*time.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	data, ctrl := rec.Sink("rtp-video")
	if data == "" || ctrl == "" {
		t.Fatalf("sinks = %q %q (rtp needs data and control)", data, ctrl)
	}

	// Blast 90 RTP packets with 90 kHz timestamps 33 ms apart. The MSU
	// derives the delivery schedule from the timestamps, so arrival
	// pacing does not matter (§2.3.2).
	dataConn, err := net.Dial("udp", data)
	if err != nil {
		t.Fatal(err)
	}
	defer dataConn.Close()
	var sent [][]byte
	for i := 0; i < 90; i++ {
		pkt := protocol.EncodeRTP(protocol.RTPHeader{
			Seq: uint16(i), Timestamp: uint32(1000 + i*3000), SSRC: 7,
		}, []byte{byte(i), 0xEE})
		if _, err := dataConn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		sent = append(sent, pkt)
		time.Sleep(500 * time.Microsecond) // fast: ~66x real time
	}
	// Interleave a control message too.
	ctrlConn, err := net.Dial("udp", ctrl)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlConn.Close()
	if _, err := ctrlConn.Write([]byte("RTCP-SR")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the MSU drain the socket
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}

	// The recording appears in the table of contents with ~3s length
	// (90 frames × 33ms from timestamps, NOT the ~45ms arrival span).
	var info ContentInfo
	deadline := time.Now().Add(3 * time.Second)
	for {
		items, err := c.ListContent()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, it := range items {
			if it.Name == "talk" {
				info, found = it, true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recording never committed: %+v", items)
		}
		time.Sleep(10 * time.Millisecond)
	}
	wantLen := 89 * 3000 * time.Second / 90000
	if info.Length < wantLen-50*time.Millisecond || info.Length > wantLen+50*time.Millisecond {
		t.Fatalf("recorded length %v, want ~%v (timestamp-derived)", info.Length, wantLen)
	}

	// Play it back; data packets return on the data port, the control
	// message on the control port.
	ctrlRecv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlRecv.Close()
	ctrlRecv.SetCapture(true)
	playRecv, err := NewReceiver("")
	if err != nil {
		t.Fatal(err)
	}
	defer playRecv.Close()
	playRecv.SetCapture(true)
	if err := c.RegisterPort("tv", "rtp-video", playRecv.Addr(), ctrlRecv.Addr()); err != nil {
		t.Fatal(err)
	}
	stream, err := c.Play("talk", "tv", false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stream.EOF():
	case <-time.After(15 * time.Second):
		t.Fatal("no EOF on playback")
	}
	playRecv.WaitCount(len(sent), 2*time.Second) // bounded drain of the sink
	got := playRecv.Packets()
	if len(got) != len(sent) {
		t.Fatalf("replayed %d packets, want %d", len(got), len(sent))
	}
	for i := range got {
		if string(got[i].Payload) != string(sent[i]) {
			t.Fatalf("replayed packet %d differs", i)
		}
	}
	// Playback is re-paced to the timestamp schedule (~3s).
	if span := playRecv.Span(); span < 2*time.Second {
		t.Errorf("replay span %v — schedule not reconstructed from timestamps", span)
	}
	if !ctrlRecv.WaitCount(1, 3*time.Second) {
		t.Fatal("control message not replayed on the control port")
	}
	if string(ctrlRecv.Packets()[0].Payload) != "RTCP-SR" {
		t.Fatal("control payload mangled")
	}
	if err := stream.Quit(); err != nil {
		t.Fatal(err)
	}
}

func TestSeminarCompositeGroup(t *testing.T) {
	cluster := movieCluster(t, time.Second)
	c, err := Dial(cluster.Addr(), "erin")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Register component ports, then the composite Seminar port.
	vRecv, _ := NewReceiver("")
	defer vRecv.Close()
	aRecv, _ := NewReceiver("")
	defer aRecv.Close()
	if err := c.RegisterPort("v", "rtp-video", vRecv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterPort("a", "vat-audio", aRecv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterCompositePort("sem", "seminar", map[string]string{
		"rtp-video": "v", "vat-audio": "a",
	}); err != nil {
		t.Fatal(err)
	}

	// Record a seminar: both components through one group.
	rec, err := c.Record("talk1", "seminar", "sem", time.Minute, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sinks()) != 2 {
		t.Fatalf("sinks = %+v", rec.Sinks())
	}
	vData, _ := rec.Sink("rtp-video")
	aData, _ := rec.Sink("vat-audio")
	vConn, _ := net.Dial("udp", vData)
	defer vConn.Close()
	aConn, _ := net.Dial("udp", aData)
	defer aConn.Close()
	for i := 0; i < 30; i++ {
		vConn.Write(protocol.EncodeRTP(protocol.RTPHeader{Timestamp: uint32(i * 3000)}, []byte{1, byte(i)})) //nolint:errcheck
		aConn.Write(protocol.EncodeVAT(protocol.VATHeader{Timestamp: uint32(i * 160)}, []byte{2, byte(i)}))  //nolint:errcheck
		time.Sleep(time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}

	// The composite parent and both children are in the table.
	deadline := time.Now().Add(3 * time.Second)
	for {
		items, _ := c.ListContent()
		names := map[string]bool{}
		for _, it := range items {
			names[it.Name] = true
		}
		if names["talk1"] && names["talk1/rtp-video"] && names["talk1/vat-audio"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("composite content incomplete: %v", names)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Play the seminar through the composite port: one group, both
	// receivers get their streams, one VCR command drives both.
	stream, err := c.Play("talk1", "sem", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.Info().Streams) != 2 {
		t.Fatalf("group members = %+v", stream.Info().Streams)
	}
	if !vRecv.WaitCount(5, 5*time.Second) || !aRecv.WaitCount(5, 5*time.Second) {
		t.Fatal("component streams not delivering")
	}
	if _, err := stream.Pause(); err != nil {
		t.Fatal(err)
	}
	nv, na := vRecv.Count(), aRecv.Count()
	time.Sleep(200 * time.Millisecond)
	if vRecv.Count() > nv+2 || aRecv.Count() > na+2 {
		t.Fatal("pause did not stop both group members")
	}
	if err := stream.Quit(); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionControlAndQueueing(t *testing.T) {
	// A single disk advertising 3 Mbit/s admits two 1.5 Mbit/s MPEG
	// streams; the third fails, or queues until one quits.
	pkts := shortMovie(t, 2*time.Second)
	cluster, err := StartCluster(ClusterConfig{
		BlockSize:     64 * 1024,
		DiskBandwidth: 3000 * units.Kbps,
		QueueTimeout:  10 * time.Second,
		Preload: func(m, d int, vol *msufs.Volume) error {
			return Ingest(vol, "movie", "mpeg1", pkts)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	c, err := Dial(cluster.Addr(), "frank")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var streams []*Stream
	for i := 0; i < 2; i++ {
		recv, err := NewReceiver("")
		if err != nil {
			t.Fatal(err)
		}
		defer recv.Close()
		port := "tv" + string(rune('0'+i))
		if err := c.RegisterPort(port, "mpeg1", recv.Addr(), ""); err != nil {
			t.Fatal(err)
		}
		s, err := c.Play("movie", port, false)
		if err != nil {
			t.Fatalf("stream %d rejected: %v", i, err)
		}
		streams = append(streams, s)
	}

	// Third stream: no bandwidth left.
	recv3, _ := NewReceiver("")
	defer recv3.Close()
	if err := c.RegisterPort("tv3", "mpeg1", recv3.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	_, err = c.Play("movie", "tv3", false)
	if err == nil {
		t.Fatal("third stream admitted beyond disk bandwidth")
	}
	if !errors.Is(err, wire.ErrRemote) || !strings.Contains(err.Error(), "no MSU with sufficient resources") {
		t.Fatalf("unexpected rejection: %v", err)
	}

	// With Wait, the request queues and succeeds once a slot frees.
	done := make(chan error, 1)
	go func() {
		s, err := c.Play("movie", "tv3", true)
		if err == nil {
			s.Quit() //nolint:errcheck
		}
		done <- err
	}()
	time.Sleep(300 * time.Millisecond) // let it queue
	if err := streams[0].Quit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued play failed: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("queued play never scheduled")
	}
	streams[1].Quit() //nolint:errcheck
}

func TestTypeMismatchRejected(t *testing.T) {
	cluster := movieCluster(t, time.Second)
	c, err := Dial(cluster.Addr(), "grace")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, _ := NewReceiver("")
	defer recv.Close()
	if err := c.RegisterPort("audio", "vat-audio", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	// "movie" is mpeg1; playing it to a vat-audio port must fail.
	if _, err := c.Play("movie", "audio", false); err == nil {
		t.Fatal("type mismatch accepted")
	}
	// Duplicate port names are rejected.
	if err := c.RegisterPort("audio", "vat-audio", recv.Addr(), ""); err == nil {
		t.Fatal("duplicate port accepted")
	}
	// Unknown content.
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Play("nonesuch", "tv", false); err == nil {
		t.Fatal("unknown content accepted")
	}
	// Unknown port.
	if _, err := c.Play("movie", "nonesuch", false); err == nil {
		t.Fatal("unknown port accepted")
	}
}

func TestMSUFailureAndRecovery(t *testing.T) {
	cluster := movieCluster(t, time.Second)
	c, err := Dial(cluster.Addr(), "heidi")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, _ := NewReceiver("")
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}

	// Kill the MSU: the Coordinator notices via the broken TCP
	// connection and marks it unavailable.
	cluster.MSUs[0].Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.MSUsAvailable == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never noticed the dead MSU")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Play("movie", "tv", false); err == nil {
		t.Fatal("play succeeded against a dead MSU")
	}

	// Bring a replacement up on the same volumes: it re-registers and
	// service resumes (§2.2).
	m2, err := cluster.RestartMSU(0)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	deadline = time.Now().Add(3 * time.Second)
	for {
		st, _ := c.Status()
		if st.MSUsAvailable == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("MSU never restored")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stream, err := c.Play("movie", "tv", false)
	if err != nil {
		t.Fatalf("play after recovery: %v", err)
	}
	if !recv.WaitCount(5, 5*time.Second) {
		t.Fatal("no packets after recovery")
	}
	stream.Quit() //nolint:errcheck
}

func TestRecordingOverestimateReclaimed(t *testing.T) {
	// A recording that reserves far more than it uses must hand the
	// difference back: afterwards an equally huge reservation still
	// fits.
	cluster, err := StartCluster(ClusterConfig{
		BlockSize: 64 * 1024,
		DiskSize:  8 * units.MB, // small disk: ~120 blocks
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, err := Dial(cluster.Addr(), "ivan")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recv, _ := NewReceiver("")
	defer recv.Close()
	if err := c.RegisterPort("cam", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}

	record := func(name string) {
		t.Helper()
		// 30 s at 1.5 Mbit/s ≈ 5.6 MB ≈ 86 of ~120 blocks: two such
		// reservations cannot coexist.
		rec, err := c.Record(name, "mpeg1", "cam", 30*time.Second, false)
		if err != nil {
			t.Fatalf("record %s: %v", name, err)
		}
		data, _ := rec.Sink("mpeg1")
		conn, err := net.Dial("udp", data)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for i := 0; i < 20; i++ {
			conn.Write(make([]byte, 1024)) //nolint:errcheck
			time.Sleep(time.Millisecond)
		}
		time.Sleep(200 * time.Millisecond)
		if err := rec.Stop(); err != nil {
			t.Fatal(err)
		}
		// Wait for commit.
		deadline := time.Now().Add(3 * time.Second)
		for {
			items, _ := c.ListContent()
			for _, it := range items {
				if it.Name == name {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never committed", name)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	record("take1")
	record("take2")
	record("take3") // only possible if overestimates were reclaimed
}

func TestDeleteContent(t *testing.T) {
	cluster := movieCluster(t, time.Second)
	c, err := Dial(cluster.Addr(), "judy")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.DeleteContent("movie"); err != nil {
		t.Fatal(err)
	}
	items, err := c.ListContent()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("content remains: %+v", items)
	}
	if err := c.DeleteContent("movie"); err == nil {
		t.Fatal("double delete succeeded")
	}
	// The volume no longer holds the file or its companions.
	for _, fi := range cluster.Volume(0, 0).List() {
		t.Errorf("file %q survived deletion", fi.Name)
	}
}

func TestMultiMSUPlacement(t *testing.T) {
	// Content lands on specific MSUs; plays route to the right one.
	pkts := shortMovie(t, time.Second)
	cluster, err := StartCluster(ClusterConfig{
		MSUs:      2,
		BlockSize: 64 * 1024,
		Preload: func(m, d int, vol *msufs.Volume) error {
			name := "movie-a"
			if m == 1 {
				name = "movie-b"
			}
			return Ingest(vol, name, "mpeg1", pkts)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, err := Dial(cluster.Addr(), "kate")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	items, err := c.ListContent()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("contents = %+v", items)
	}
	recv, _ := NewReceiver("")
	defer recv.Close()
	if err := c.RegisterPort("tv", "mpeg1", recv.Addr(), ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"movie-a", "movie-b"} {
		s, err := c.Play(name, "tv", false)
		if err != nil {
			t.Fatalf("play %s: %v", name, err)
		}
		want := "msu0"
		if name == "movie-b" {
			want = "msu1"
		}
		if string(s.Info().MSU) != want {
			t.Errorf("%s served by %s, want %s", name, s.Info().MSU, want)
		}
		if !recv.WaitCount(3, 5*time.Second) {
			t.Fatalf("%s not delivering", name)
		}
		s.Quit() //nolint:errcheck
	}
}
